//! Typed allocation failures.
//!
//! Every allocator entry point returns `Result<_, AllocError>`. Each
//! variant names the exact invariant that broke and the web/node/register
//! involved, so a failure in a thousand-function build pinpoints its cause
//! without a debugger. The pipeline treats every variant as recoverable:
//! [`crate::allocate_program`] falls back to the degraded spill-everything
//! allocation (see [`crate::degraded_allocation`]) and emits a `Degraded`
//! telemetry event rather than aborting the whole program.

use ccra_ir::{BlockId, RegClass, VReg};

/// A register-allocation failure.
///
/// Variants are specific by design: the checker and the fallback policy
/// both need to know *which* invariant failed, and a grab-bag `Internal`
/// variant would hide exactly the information the telemetry layer exists
/// to surface.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// Web analysis found no def web for a defined register — the du-chain
    /// computation and the instruction stream disagree.
    MissingDefWeb {
        /// The defined register with no web.
        vreg: VReg,
        /// The block of the defining instruction.
        block: BlockId,
        /// The instruction index within the block.
        idx: u32,
    },
    /// Spill insertion had to redirect the def of a call that returns
    /// nothing — the spilled node's def refs point at a non-defining call.
    CallWithoutReturn {
        /// The block of the call.
        block: BlockId,
        /// The instruction index within the block.
        idx: u32,
    },
    /// Spill insertion had to redirect the def of an instruction that
    /// defines nothing (a store or an overhead marker).
    NoDefToReplace {
        /// The block of the instruction.
        block: BlockId,
        /// The instruction index within the block.
        idx: u32,
    },
    /// Two spilled nodes both claim the def of one instruction — the
    /// interference graph handed spill insertion overlapping def refs.
    DuplicateSpilledDef {
        /// The block of the twice-claimed instruction.
        block: BlockId,
        /// The instruction index within the block.
        idx: u32,
        /// The register whose def was claimed twice.
        vreg: VReg,
    },
    /// Simplification tried to decrement the degree of a node the bank's
    /// degree table does not contain — the graph has an edge into another
    /// bank or a stale node.
    DegreeUnderflow {
        /// The node whose removal was being propagated.
        node: u32,
        /// The neighbor missing from the degree table.
        neighbor: u32,
    },
    /// Coloring was blocked but no live range was eligible for spilling
    /// (every candidate is an unspillable spill temporary).
    NoSpillCandidate {
        /// The register bank that got stuck.
        class: RegClass,
    },
    /// The spill loop hit its round cap without converging — the register
    /// file is too small for the instruction shapes, or spilling failed to
    /// reduce pressure.
    SpillRoundsExceeded {
        /// The function that failed to converge.
        func: String,
        /// Rounds executed (== the configured cap).
        rounds: u32,
        /// Live ranges still uncolored at the last round.
        remaining_uncolored: usize,
    },
    /// The degraded spill-everything fallback itself failed to color the
    /// residue (parameters and spill temporaries) — the register file
    /// cannot hold even single-instruction live ranges.
    DegradedAllocationFailed {
        /// The function the fallback gave up on.
        func: String,
        /// Live ranges still uncolored after spilling everything.
        remaining_uncolored: usize,
    },
    /// The serving layer's per-job watchdog
    /// ([`crate::driver::TimeoutJob`]) expired before this function was
    /// allocated; it falls back to the degraded allocation like any other
    /// per-function failure. Not an allocator invariant — a service
    /// policy decision, surfaced through the same recoverable channel.
    DeadlineExceeded {
        /// The function the watchdog preempted.
        func: String,
    },
    /// A chaos-harness fault ([`crate::driver::chaos`]) was injected in
    /// place of allocating this function. Only fault-injection runs
    /// produce it; it exercises exactly the recovery path a genuine
    /// allocator error takes.
    FaultInjected {
        /// The function the fault afflicted.
        func: String,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::MissingDefWeb { vreg, block, idx } => {
                write!(f, "no def web for {vreg} at {block}:{idx}")
            }
            AllocError::CallWithoutReturn { block, idx } => {
                write!(
                    f,
                    "spilled def points at a call with no return register at {block}:{idx}"
                )
            }
            AllocError::NoDefToReplace { block, idx } => {
                write!(
                    f,
                    "spilled def points at a non-defining instruction at {block}:{idx}"
                )
            }
            AllocError::DuplicateSpilledDef { block, idx, vreg } => {
                write!(
                    f,
                    "two spilled nodes claim the def of {vreg} at {block}:{idx}"
                )
            }
            AllocError::DegreeUnderflow { node, neighbor } => {
                write!(
                    f,
                    "degree table is missing node {neighbor}, a neighbor of removed node {node}"
                )
            }
            AllocError::NoSpillCandidate { class } => {
                write!(
                    f,
                    "coloring blocked in the {class:?} bank with no spillable live range"
                )
            }
            AllocError::SpillRoundsExceeded {
                func,
                rounds,
                remaining_uncolored,
            } => {
                write!(
                    f,
                    "allocation of `{func}` did not converge in {rounds} rounds \
                     ({remaining_uncolored} live ranges still uncolored)"
                )
            }
            AllocError::DegradedAllocationFailed {
                func,
                remaining_uncolored,
            } => {
                write!(
                    f,
                    "degraded allocation of `{func}` left {remaining_uncolored} live ranges \
                     uncolored"
                )
            }
            AllocError::DeadlineExceeded { func } => {
                write!(f, "service timeout expired before `{func}` was allocated")
            }
            AllocError::FaultInjected { func } => {
                write!(f, "chaos fault injected in place of allocating `{func}`")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_entities_involved() {
        let e = AllocError::MissingDefWeb {
            vreg: VReg(3),
            block: BlockId(1),
            idx: 4,
        };
        let msg = format!("{e}");
        assert!(msg.contains("v3"), "{msg}");
        let e = AllocError::SpillRoundsExceeded {
            func: "main".into(),
            rounds: 60,
            remaining_uncolored: 2,
        };
        assert!(format!("{e}").contains("main"));
        assert!(format!("{e}").contains("60"));
    }
}
