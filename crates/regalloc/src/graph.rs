//! The interference graph.

use ccra_analysis::BitSet;

/// An undirected interference graph over dense node indices.
///
/// Construction is two-phase: add all edges, then query adjacency lists and
/// degrees. Membership queries use a triangular bit matrix, so duplicate
/// `add_edge` calls are cheap and idempotent.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    n: usize,
    adj: Vec<Vec<u32>>,
    matrix: BitSet,
}

impl InterferenceGraph {
    /// Creates an edgeless graph over `n` nodes.
    pub fn new(n: usize) -> Self {
        InterferenceGraph {
            n,
            adj: vec![Vec::new(); n],
            matrix: BitSet::new(n * (n + 1) / 2),
        }
    }

    fn tri_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        hi * (hi + 1) / 2 + lo
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds an (undirected) interference edge between `a` and `b`.
    /// Self-loops and duplicates are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        let (a, b) = (a as usize, b as usize);
        assert!(
            a < self.n && b < self.n,
            "edge ({a},{b}) out of range {}",
            self.n
        );
        if a == b {
            return;
        }
        let idx = self.tri_index(a, b);
        if self.matrix.insert(idx) {
            self.adj[a].push(b as u32);
            self.adj[b].push(a as u32);
        }
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: u32, b: u32) -> bool {
        let (a, b) = (a as usize, b as usize);
        if a == b || a >= self.n || b >= self.n {
            return false;
        }
        self.matrix.contains(self.tri_index(a, b))
    }

    /// The neighbors of `a`.
    pub fn neighbors(&self, a: u32) -> &[u32] {
        &self.adj[a as usize]
    }

    /// The full degree of `a` (not adjusted for removed nodes).
    pub fn degree(&self, a: u32) -> usize {
        self.adj[a as usize].len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_symmetric_and_deduped() {
        let mut g = InterferenceGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        assert!(g.interferes(0, 1));
        assert!(g.interferes(1, 0));
        assert!(!g.interferes(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = InterferenceGraph::new(2);
        g.add_edge(1, 1);
        assert_eq!(g.degree(1), 0);
        assert!(!g.interferes(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = InterferenceGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn clique() {
        let n = 10u32;
        let mut g = InterferenceGraph::new(n as usize);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(a, b);
            }
        }
        assert_eq!(g.num_edges(), 45);
        for a in 0..n {
            assert_eq!(g.degree(a), 9);
        }
    }
}
