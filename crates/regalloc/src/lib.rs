//! Call-cost directed register allocation — the primary contribution of
//! Lueh & Gross, *Call-Cost Directed Register Allocation* (PLDI 1997).
//!
//! The crate implements the paper's register-allocation framework
//! (Figure 1) and five allocators on top of it:
//!
//! * **base Chaitin-style** coloring with the simple call-cost model of
//!   Section 3.1 ([`AllocatorConfig::base`]);
//! * **improved Chaitin-style** coloring with the paper's three
//!   enhancements ([`AllocatorConfig::improved`]): storage-class analysis
//!   (Section 4), benefit-driven simplification (Section 5), and preference
//!   decision (Section 6) — each independently toggleable
//!   ([`AllocatorConfig::with_improvements`]);
//! * **optimistic (Briggs)** coloring ([`AllocatorConfig::optimistic`]),
//!   also composable with the improvements (Section 8);
//! * **priority-based (Chow)** coloring without splitting, with the three
//!   color orderings of Section 9.1 ([`AllocatorConfig::priority`]);
//! * the **CBH** model of Section 10 ([`AllocatorConfig::cbh`]).
//!
//! Every allocator runs through the same pipeline: graph construction and
//! aggressive coalescing ([`build_context`]), color ordering and assignment,
//! iterated spill-code insertion and graph reconstruction, and finally
//! shuffle-/save-restore-code insertion. The cost of the result is an
//! [`Overhead`]: weighted spill, caller-save, callee-save, and shuffle
//! operations (Section 3) — both computable analytically
//! ([`weighted_overhead`]) and measurable by executing the rewritten
//! program ([`measured_overhead`]).
//!
//! # Example
//!
//! ```
//! use ccra_ir::{FunctionBuilder, Program, RegClass, BinOp, Callee};
//! use ccra_analysis::FrequencyInfo;
//! use ccra_machine::RegisterFile;
//! use ccra_regalloc::{allocate_program, AllocatorConfig};
//!
//! // x is live across a call; the allocators decide whether it belongs in
//! // a caller-save register, a callee-save register, or memory.
//! let mut b = FunctionBuilder::new("main");
//! let x = b.new_vreg(RegClass::Int);
//! b.iconst(x, 1);
//! let r = b.new_vreg(RegClass::Int);
//! b.call(Callee::External("g"), vec![], Some(r));
//! b.binary(BinOp::Add, r, r, x);
//! b.ret(Some(r));
//! let mut program = Program::new();
//! let id = program.add_function(b.finish());
//! program.set_main(id);
//!
//! let freq = FrequencyInfo::profile(&program)?;
//! let out = allocate_program(&program, &freq, RegisterFile::new(8, 4, 2, 2),
//!                            &AllocatorConfig::improved())
//!     .expect("allocation succeeds");
//! assert!(out.overhead.total() >= 0.0);
//! # Ok::<(), ccra_analysis::InterpError>(())
//! ```
//!
//! # Robustness
//!
//! Every entry point returns `Result<_, `[`AllocError`]`>` with variants
//! naming the exact web, node, or register involved. The program-level
//! drivers recover from per-function failures via [`degraded_allocation`],
//! and the [`check`] module verifies any finished allocation independently
//! of the allocator that produced it.
//!
//! # Parallelism
//!
//! The [`driver`] module allocates a program's functions in parallel on a
//! dependency-free work-stealing pool with a deterministic merge —
//! [`ParallelDriver`] output is byte-identical at any worker count and
//! equal to the serial pipeline — and [`BatchService`] fronts many-program
//! workloads with a bounded queue and per-job statuses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod build;
pub mod cache;
mod cbh;
mod chaitin;
pub mod check;
pub mod driver;
mod error;
mod graph;
pub mod metrics;
mod node;
pub mod obsv;
mod pipeline;
mod priority;
pub mod quality;
mod reconstruct;
mod rewrite;
mod spill;
pub mod trace;
mod types;

pub use accounting::{measured_overhead, weighted_overhead};
pub use build::{build_context, build_context_traced, FuncContext};
pub use cache::{
    config_fingerprint, file_fingerprint, freq_fingerprint, AllocCache, CacheConfig, CacheKey,
    CacheStats,
};
pub use cbh::{allocate_bank_cbh, allocate_bank_cbh_traced};
pub use chaitin::{
    allocate_bank_chaitin, allocate_bank_chaitin_traced, preference_decision, BankResult,
};
pub use check::check_allocation_metered;
pub use check::{check_allocation, CheckViolation};
pub use driver::{
    AdmissionConfig, AdmissionController, AdmissionSnapshot, AllocRequest, BatchConfig,
    BatchHandle, BatchJob, BatchResult, BatchService, BatchStatus, CancelOutcome, ChaosConfig,
    DegradeCause, DriverReport, DriverSummary, FlightEvent, FlightKind, FlightRecorder, FlightView,
    JobStatus, ParallelDriver, Priority, RejectCause, RequestTrace, StatusServer, SubmitError,
    Timeline, TimelineCollector, TimelineEvent, TimelineSummary,
};
pub use error::AllocError;
pub use graph::InterferenceGraph;
pub use metrics::{CounterSnapshot, Histogram, HistogramSnapshot, MetricsRegistry};
pub use node::{CallSite, NodeInfo, SPILL_TEMP_COST};
pub use obsv::{
    AlertCondition, AlertRule, AlertRuleStats, AlertState, AlertTransition, Clock, ManualClock,
    Observatory, ObsvConfig, Tier, WallClock,
};
pub use pipeline::{
    allocate_function, allocate_function_instrumented, allocate_function_traced, allocate_program,
    allocate_program_instrumented, allocate_program_traced, allocate_program_with,
    allocate_program_with_traced, count_kinds, degraded_allocation, FuncAllocation,
    ProgramAllocation, RangeSummary, RefAssignment,
};
pub use priority::{allocate_bank_priority, allocate_bank_priority_traced};
pub use quality::{
    memprof_finish, memprof_record, memprof_start, score_program, score_program_with, FuncQuality,
    MemProfile, PhaseMem, QualityReport,
};
pub use reconstruct::{reconstruct_context, reconstruct_context_traced};
pub use rewrite::{insert_overhead_markers, FinalAssignment, MarkerRewrite};
pub use spill::{
    insert_spill_code, insert_spill_code_instrumented, insert_spill_code_traced, SpillRewrite,
    TempRef,
};
pub use trace::{AllocEvent, AllocSink, JsonlSink, NoopSink, RecordingSink, TraceCtx};
pub use types::{
    AllocatorConfig, AllocatorKind, BsKey, CalleeCostModel, Loc, Overhead, PriorityOrdering,
};
