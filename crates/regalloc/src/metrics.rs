//! Aggregate allocator self-profiling: counters, gauges, and log-bucketed
//! histograms collected in a [`MetricsRegistry`].
//!
//! Where [`crate::trace`] records *individual* events (one JSON object per
//! decision), this module records *aggregates*: how many rounds ran, how
//! the interference-graph sizes distribute, where the wall-clock time went
//! per phase. The two layers share a philosophy:
//!
//! * **No globals.** A registry is threaded through the pipeline exactly
//!   like an [`crate::AllocSink`] — callers own it, tests can run many in
//!   parallel, and nothing leaks between allocations unless merged
//!   explicitly with [`MetricsRegistry::merge`].
//! * **Zero cost when disabled.** Every mutator gates on
//!   [`MetricsRegistry::enabled`] internally, so a disabled registry costs
//!   one branch per site: no `Instant::now()`, no map insertion, no
//!   allocation. Timers use [`MetricsRegistry::timer`], which returns
//!   `None` when disabled.
//!
//! Metric names are `&'static str` so recording never allocates for keys;
//! the `BTreeMap` storage makes both exporters ([`MetricsRegistry::to_prometheus_text`]
//! and [`MetricsRegistry::to_json_value`]) deterministic — stable key order,
//! byte-identical output for identical contents.
//!
//! Histograms bucket by powers of two ([`Histogram::bucket_index`]): bucket
//! 0 holds exact zeros, bucket *i* holds values in `[2^(i-1), 2^i - 1]`.
//! That is the right shape for the quantities the allocator observes —
//! graph sizes and phase latencies span four orders of magnitude across the
//! workload matrix, and relative (not absolute) resolution is what a
//! regression gate needs.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::json::Value;

/// Number of histogram buckets: bucket 0 plus one per power of two up to
/// `2^30`, with everything larger clamped into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The quantiles both exporters surface for every histogram, as
/// `(label, q)` pairs — the p50/p95/p99 the latency SLO accounting reads.
pub const QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)];

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 counts exact zeros; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i - 1]` (see [`Histogram::bucket_bound`] for the inclusive
/// upper bound). The exact sum and count are kept alongside, so means are
/// exact even though individual values are bucketed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of a bucket: 0 for bucket 0, `2^i - 1`
    /// for bucket `i` (the last bucket has no upper bound; its nominal
    /// bound is still reported for exporters).
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            (1u64 << index.min(63)) - 1
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets: the
    /// inclusive upper bound ([`Histogram::bucket_bound`]) of the bucket
    /// holding the observation of rank `ceil(q * count)`. Returns 0 for an
    /// empty histogram. Resolution is the bucket width — a factor of two —
    /// which is exactly the precision the bucketing admits; the exporters
    /// surface p50/p95/p99 through this.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Adds another histogram bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// How many observations certainly exceeded `threshold`: the sum of
    /// every bucket whose *lower* bound is above it. Observations in the
    /// bucket straddling the threshold are not counted — a conservative
    /// undercount bounded by one bucket (a factor of two), which is the
    /// resolution the bucketing admits. SLO burn-rate accounting uses this
    /// to classify per-interval latency observations as over-budget.
    pub fn count_over(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(i, _)| Self::bucket_bound(i - 1) >= threshold)
            .map(|(_, &c)| c)
            .sum()
    }
}

/// A point-in-time copy of one counter, for per-interval delta math.
///
/// Counters are cumulative; a sampler that wants a *rate* must difference
/// two snapshots. [`CounterSnapshot::delta`] saturates at zero, so a
/// registry that was swapped or reset between snapshots yields a zero
/// delta instead of a wrapped astronomically large one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    value: u64,
}

impl CounterSnapshot {
    /// Snapshots one counter's current value (0 when never recorded).
    pub fn of(metrics: &MetricsRegistry, name: &str) -> Self {
        CounterSnapshot {
            value: metrics.counter(name),
        }
    }

    /// The captured cumulative value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Observations since `earlier`, clamped at zero — never wraps even if
    /// `earlier` was taken from a fresher registry.
    pub fn delta(&self, earlier: &CounterSnapshot) -> u64 {
        self.value.saturating_sub(earlier.value)
    }
}

/// A point-in-time copy of one histogram, for per-interval delta math.
///
/// [`HistogramSnapshot::delta`] returns a full [`Histogram`] holding only
/// the observations recorded between the two snapshots, so interval means
/// and quantiles come from the ordinary histogram machinery. Every field
/// differences with `saturating_sub` — a reset registry yields an empty
/// delta, never a wrapped one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Snapshots one histogram's current contents (empty when absent).
    pub fn of(metrics: &MetricsRegistry, name: &str) -> Self {
        match metrics.histogram(name) {
            Some(h) => HistogramSnapshot {
                buckets: *h.buckets(),
                count: h.count(),
                sum: h.sum(),
            },
            None => HistogramSnapshot::default(),
        }
    }

    /// The captured cumulative observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The captured cumulative sum.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The observations recorded since `earlier`, as a histogram. Each
    /// bucket (and the count and sum) differences monotonically: any
    /// component where `earlier` reads higher clamps to zero.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> Histogram {
        let mut out = Histogram::new();
        for (i, (&now, &was)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[i] = now.saturating_sub(was);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Mutators are no-ops on a [`MetricsRegistry::disabled`] registry, so
/// instrumentation sites call them unconditionally; only sites whose
/// *inputs* are expensive to compute (e.g. a max-degree scan) need to gate
/// on [`MetricsRegistry::enabled`] themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// An empty registry that ignores all recordings — the metrics analog
    /// of [`crate::NoopSink`].
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            ..MetricsRegistry::new()
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        if self.enabled {
            *self.counters.entry(name).or_insert(0) += n;
        }
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets a gauge to a value.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        if self.enabled {
            self.gauges.insert(name, value);
        }
    }

    /// Raises a gauge to `value` if it exceeds the current reading.
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        if self.enabled {
            let g = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
            if value > *g {
                *g = value;
            }
        }
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if self.enabled {
            self.histograms.entry(name).or_default().observe(value);
        }
    }

    /// Starts a wall-clock timer iff enabled — the metrics analog of
    /// [`crate::trace::span_start`].
    pub fn timer(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Ends a timer started by [`MetricsRegistry::timer`], observing the
    /// elapsed microseconds into a histogram.
    pub fn observe_elapsed(&mut self, name: &'static str, start: Option<Instant>) {
        if let Some(t) = start {
            self.observe(name, t.elapsed().as_micros() as u64);
        }
    }

    /// A counter's value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if any observation was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Folds another registry into this one: counters sum, histograms add
    /// bucket-wise, gauges keep the maximum. Merging ignores the *other*
    /// registry's enabled flag (its contents are already final) but still
    /// respects this one's.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        if !self.enabled {
            return;
        }
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &other.gauges {
            let g = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
            if v > *g {
                *g = v;
            }
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Counters render as `<name> <value>` with a `# TYPE` header;
    /// histograms render cumulative `_bucket{le="..."}` series (up to the
    /// highest non-empty bucket, then `+Inf`) plus `_sum`, `_count`, and
    /// one `<name>{quantile="..."}` sample per entry of [`QUANTILES`]
    /// (bucket-resolution, from [`Histogram::quantile`]). Output is
    /// deterministic: names are emitted in sorted order.
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let top = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cum = 0u64;
            for i in 0..=top {
                cum += h.buckets[i];
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cum}",
                    Histogram::bucket_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            for (label, q) in QUANTILES {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
        }
        out
    }

    /// Renders the registry as a JSON value:
    ///
    /// ```json
    /// {"counters": {...}, "gauges": {...},
    ///  "histograms": {"name": {"count": 3, "sum": 12,
    ///                          "p50": 3, "p95": 7, "p99": 7,
    ///                          "buckets": [{"le": 3, "n": 2}, ...]}}}
    /// ```
    ///
    /// Empty buckets are omitted; key order is sorted, so identical
    /// contents render to identical bytes.
    pub fn to_json_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), Value::Int(v as i64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(&k, &v)| (k.to_string(), Value::Float(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(&k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        Value::Obj(vec![
                            (
                                "le".to_string(),
                                Value::Int(Histogram::bucket_bound(i) as i64),
                            ),
                            ("n".to_string(), Value::Int(c as i64)),
                        ])
                    })
                    .collect();
                let obj = Value::Obj(vec![
                    ("count".to_string(), Value::Int(h.count as i64)),
                    ("sum".to_string(), Value::Int(h.sum as i64)),
                    ("p50".to_string(), Value::Int(h.quantile(0.5) as i64)),
                    ("p95".to_string(), Value::Int(h.quantile(0.95) as i64)),
                    ("p99".to_string(), Value::Int(h.quantile(0.99) as i64)),
                    ("buckets".to_string(), Value::Arr(buckets)),
                ]);
                (k.to_string(), obj)
            })
            .collect();
        Value::Obj(vec![
            ("counters".to_string(), Value::Obj(counters)),
            ("gauges".to_string(), Value::Obj(gauges)),
            ("histograms".to_string(), Value::Obj(histograms)),
        ])
    }

    /// [`MetricsRegistry::to_json_value`] rendered to a string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's bound is the largest value it admits.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_bound(i)), i);
            assert_eq!(
                Histogram::bucket_index(Histogram::bucket_bound(i) + 1),
                i + 1
            );
        }
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(4), 15);
    }

    #[test]
    fn histogram_tracks_exact_count_and_sum() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 5, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 907);
        assert!((h.mean() - 181.4).abs() < 1e-9);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 2); // the ones
        assert_eq!(h.buckets()[3], 1); // 5 ∈ [4,7]
        assert_eq!(h.buckets()[10], 1); // 900 ∈ [512,1023]
    }

    #[test]
    fn quantiles_land_on_exact_bucket_bounds() {
        // Empty histogram: every quantile is 0.
        assert_eq!(Histogram::new().quantile(0.5), 0);
        assert_eq!(Histogram::new().quantile(0.99), 0);

        // All observations in one bucket: every quantile is that bucket's
        // inclusive upper bound, even when the raw values sit below it.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.observe(5); // bucket [4, 7]
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7, "q={q}");
        }

        // 90 observations in [1,1], 10 in [8,15]: p50 and p90 report the
        // low bucket's bound, anything past rank 90 the high bucket's.
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..10 {
            h.observe(9);
        }
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.90), 1); // rank 90 — the last low one
        assert_eq!(h.quantile(0.95), 15); // rank 95 — in [8,15]
        assert_eq!(h.quantile(0.99), 15);

        // Exact boundary between two single-count buckets: rank math, not
        // interpolation. Two observations; q=0.5 is rank 1, q=0.51 rank 2.
        let mut h = Histogram::new();
        h.observe(0); // bucket 0, bound 0
        h.observe(1024); // bucket 11, bound 2047
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.51), 2047);
        assert_eq!(h.quantile(1.0), 2047);

        // Zeros are their own bucket with bound 0.
        let mut h = Histogram::new();
        h.observe(0);
        assert_eq!(h.quantile(0.99), 0);

        // The clamp bucket's nominal bound is reported for huge values.
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(
            h.quantile(0.5),
            Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1)
        );
    }

    #[test]
    fn exporters_surface_p50_p95_p99() {
        let mut m = MetricsRegistry::new();
        for _ in 0..99 {
            m.observe("lat", 3); // bucket [2, 3]
        }
        m.observe("lat", 900); // bucket [512, 1023]
        let text = m.to_prometheus_text();
        assert!(text.contains("lat{quantile=\"0.5\"} 3"), "{text}");
        assert!(text.contains("lat{quantile=\"0.95\"} 3"), "{text}");
        assert!(text.contains("lat{quantile=\"0.99\"} 3"), "{text}");
        // Quantile samples still parse as `name value` pairs.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "{line:?}");
        }
        let json = serde::json::parse(&m.to_json()).expect("JSON exporter parses");
        let lat = json
            .get("histograms")
            .and_then(|h| h.get("lat"))
            .expect("lat histogram exported");
        assert_eq!(lat.get("p50").and_then(Value::as_i64), Some(3));
        assert_eq!(lat.get("p95").and_then(Value::as_i64), Some(3));
        assert_eq!(lat.get("p99").and_then(Value::as_i64), Some(3));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::disabled();
        assert!(!m.enabled());
        m.inc("a");
        m.add("b", 10);
        m.gauge_set("g", 1.0);
        m.gauge_max("g2", 2.0);
        m.observe("h", 42);
        assert!(m.timer().is_none());
        m.observe_elapsed("t", None);
        let other = {
            let mut o = MetricsRegistry::new();
            o.inc("x");
            o
        };
        m.merge(&other);
        assert!(m.is_empty());
        assert_eq!(m.counter("a"), 0);
    }

    #[test]
    fn merge_sums_counters_and_histograms_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.add("c", 3);
        a.add("only_a", 1);
        a.gauge_max("g", 5.0);
        a.observe("h", 2);
        let mut b = MetricsRegistry::new();
        b.add("c", 4);
        b.gauge_max("g", 9.0);
        b.gauge_set("only_b", -1.0);
        b.observe("h", 700);
        b.observe("h2", 1);
        a.merge(&b);
        assert_eq!(a.counter("c"), 7);
        assert_eq!(a.counter("only_a"), 1);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.gauge("only_b"), Some(-1.0));
        let h = a.histogram("h").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 702);
        assert_eq!(a.histogram("h2").map(Histogram::count), Some(1));
    }

    #[test]
    fn exporters_are_deterministic_and_sorted() {
        let build = || {
            let mut m = MetricsRegistry::new();
            // Insert deliberately out of name order.
            m.add("zeta", 1);
            m.add("alpha", 2);
            m.gauge_set("mid", 0.5);
            m.observe("lat", 0);
            m.observe("lat", 3);
            m.observe("lat", 100);
            m
        };
        let (a, b) = (build(), build());
        assert_eq!(a.to_prometheus_text(), b.to_prometheus_text());
        assert_eq!(a.to_json(), b.to_json());
        let text = a.to_prometheus_text();
        let alpha = text.find("alpha 2").expect("alpha rendered");
        let zeta = text.find("zeta 1").expect("zeta rendered");
        assert!(alpha < zeta, "counters render in sorted order");
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 103"));
        assert!(text.contains("lat_count 3"));
        let json = a.to_json();
        assert!(json.starts_with("{\"counters\":{\"alpha\":2"));
        // And the JSON parses back as a value.
        let v = serde::json::parse(&json).expect("exporter output parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("zeta"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn count_over_sums_only_buckets_entirely_above_the_threshold() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(100); // bucket [64, 127]
        h.observe(100);
        h.observe(5000); // bucket [4096, 8191]
                         // Threshold below the [64,127] bucket's lower bound: both buckets count.
        assert_eq!(h.count_over(63), 3);
        // Threshold inside [64,127]: that straddling bucket is excluded.
        assert_eq!(h.count_over(100), 1);
        assert_eq!(h.count_over(127), 1);
        // Threshold above everything observed.
        assert_eq!(h.count_over(1 << 20), 0);
        assert_eq!(Histogram::new().count_over(0), 0);
    }

    #[test]
    fn counter_snapshot_deltas_are_monotone_and_wraparound_free() {
        let mut m = MetricsRegistry::new();
        m.add("jobs", 10);
        let t0 = CounterSnapshot::of(&m, "jobs");
        assert_eq!(t0.value(), 10);
        m.add("jobs", 7);
        let t1 = CounterSnapshot::of(&m, "jobs");
        assert_eq!(t1.delta(&t0), 7);
        assert_eq!(t1.delta(&t1), 0);
        // A "later" snapshot that reads lower (registry reset) clamps to 0
        // rather than wrapping to ~u64::MAX.
        assert_eq!(t0.delta(&t1), 0);
        // Never-recorded counters snapshot as zero.
        assert_eq!(CounterSnapshot::of(&m, "missing").value(), 0);
    }

    #[test]
    fn histogram_snapshot_delta_isolates_the_interval() {
        let mut m = MetricsRegistry::new();
        m.observe("lat", 5);
        m.observe("lat", 5);
        let t0 = HistogramSnapshot::of(&m, "lat");
        m.observe("lat", 5);
        m.observe("lat", 900);
        let t1 = HistogramSnapshot::of(&m, "lat");
        let d = t1.delta(&t0);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 905);
        assert_eq!(d.buckets()[Histogram::bucket_index(5)], 1);
        assert_eq!(d.buckets()[Histogram::bucket_index(900)], 1);
        // The interval's own quantiles, not the cumulative ones.
        assert_eq!(d.quantile(0.5), 7); // bucket [4,7] bound
        assert_eq!(d.quantile(0.99), 1023); // bucket [512,1023] bound
                                            // Reversed order clamps every component to zero.
        let rev = t0.delta(&t1);
        assert_eq!(rev.count(), 0);
        assert_eq!(rev.sum(), 0);
        assert!(rev.buckets().iter().all(|&b| b == 0));
        // Absent histograms snapshot empty.
        let none = HistogramSnapshot::of(&m, "missing");
        assert_eq!(none.count(), 0);
        assert_eq!(none.delta(&HistogramSnapshot::default()).count(), 0);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut m = MetricsRegistry::new();
        m.observe("h", 1);
        m.observe("h", 1);
        m.observe("h", 6);
        let text = m.to_prometheus_text();
        assert!(text.contains("h_bucket{le=\"1\"} 2"));
        assert!(text.contains("h_bucket{le=\"3\"} 2"));
        assert!(text.contains("h_bucket{le=\"7\"} 3"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"));
    }
}
