//! Allocation nodes: coalesced live ranges with their cost attributes.

use ccra_analysis::WebId;
use ccra_ir::{BlockId, RegClass, VReg};

/// The effectively-infinite spill cost given to spill temporaries, so the
/// iterated allocator never re-spills the code it just inserted.
pub const SPILL_TEMP_COST: f64 = 1e18;

/// A call site within one function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallSite {
    /// The block containing the call.
    pub bb: BlockId,
    /// The instruction index within the block.
    pub idx: u32,
    /// The weighted execution frequency of the call.
    pub freq: f64,
}

/// One allocation node: a set of coalesced webs plus the cost attributes the
/// paper's benefit functions are built from.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The register bank this node competes in.
    pub class: RegClass,
    /// Weighted reference count — the load/store operations spilling this
    /// node would execute ([`SPILL_TEMP_COST`] for spill temporaries).
    pub spill_cost: f64,
    /// Weighted caller-save cost: save/restore pairs around every call this
    /// node spans.
    pub caller_cost: f64,
    /// Weighted callee-save cost: one save/restore pair per invocation of
    /// the containing function.
    pub callee_cost: f64,
    /// Number of basic blocks the node spans (the denominator of the
    /// priority function of priority-based coloring).
    pub size: u32,
    /// Indices into the function's call-site list of the calls this node is
    /// live across.
    pub calls_crossed: Vec<u32>,
    /// The webs merged into this node.
    pub webs: Vec<WebId>,
    /// Whether any member web is a spill temporary.
    pub is_spill_temp: bool,
    /// Defining instructions `(block, index, written vreg)`, for spill-code
    /// insertion.
    pub defs: Vec<(BlockId, u32, VReg)>,
    /// Using instructions `(block, index, read vreg)`; the terminator uses
    /// index `insts.len()`.
    pub uses: Vec<(BlockId, u32, VReg)>,
    /// Parameters among this node's webs (defined on function entry).
    pub param_vregs: Vec<VReg>,
}

impl NodeInfo {
    /// `benefit_caller(lr)`: loads/stores saved by a caller-save register
    /// over memory residence (Section 4).
    pub fn benefit_caller(&self) -> f64 {
        self.spill_cost - self.caller_cost
    }

    /// `benefit_callee(lr)`: loads/stores saved by a callee-save register
    /// over memory residence (Section 4).
    pub fn benefit_callee(&self) -> f64 {
        self.spill_cost - self.callee_cost
    }

    /// Whether the node is live across at least one call.
    pub fn crosses_calls(&self) -> bool {
        !self.calls_crossed.is_empty()
    }

    /// The priority function of priority-based coloring:
    /// `max(benefit_caller, benefit_callee) / size` (Section 9.1).
    pub fn priority(&self) -> f64 {
        self.benefit_caller().max(self.benefit_callee()) / f64::from(self.size.max(1))
    }

    /// The Chaitin spill heuristic: `spill_cost / degree` (lower = spilled
    /// first).
    pub fn spill_metric(&self, degree: usize) -> f64 {
        self.spill_cost / (degree.max(1) as f64)
    }

    /// The benefit-driven-simplification key (Section 5). Smaller keys are
    /// simplified (removed) earlier and therefore colored later.
    pub fn bs_key(&self, key: crate::BsKey) -> f64 {
        let (bc, be) = (self.benefit_caller(), self.benefit_callee());
        match key {
            crate::BsKey::MaxBenefit => bc.max(be),
            crate::BsKey::BenefitDelta => {
                if bc >= 0.0 && be > 0.0 {
                    (bc - be).abs()
                } else {
                    bc.max(be)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BsKey;

    fn node(spill: f64, caller: f64, callee: f64) -> NodeInfo {
        NodeInfo {
            class: RegClass::Int,
            spill_cost: spill,
            caller_cost: caller,
            callee_cost: callee,
            size: 2,
            calls_crossed: if caller > 0.0 { vec![0] } else { vec![] },
            webs: vec![],
            is_spill_temp: false,
            defs: vec![],
            uses: vec![],
            param_vregs: vec![],
        }
    }

    #[test]
    fn benefits() {
        let n = node(4000.0, 1000.0, 500.0);
        assert_eq!(n.benefit_caller(), 3000.0);
        assert_eq!(n.benefit_callee(), 3500.0);
        assert!(n.crosses_calls());
        assert_eq!(n.priority(), 1750.0);
    }

    #[test]
    fn bs_key_strategies_match_figure_4() {
        // Figure 4 of the paper: lr_x/lr_y have (bc, be) = (1800, 2000),
        // lr_z has (500, 1500). Key 1 ranks x,y above z; key 2 ranks z on
        // top because its wrong-kind penalty is larger.
        let xy = node(3000.0, 1200.0, 1000.0); // bc=1800, be=2000
        let z = node(2000.0, 1500.0, 500.0); // bc=500, be=1500
        assert_eq!(xy.bs_key(BsKey::MaxBenefit), 2000.0);
        assert_eq!(z.bs_key(BsKey::MaxBenefit), 1500.0);
        assert_eq!(xy.bs_key(BsKey::BenefitDelta), 200.0);
        assert_eq!(z.bs_key(BsKey::BenefitDelta), 1000.0);
        // With key 2, z has the larger key -> removed later -> colored
        // earlier, matching the paper's better allocation.
        assert!(z.bs_key(BsKey::BenefitDelta) > xy.bs_key(BsKey::BenefitDelta));
    }

    #[test]
    fn bs_key_falls_back_when_benefit_negative() {
        let n = node(100.0, 500.0, 50.0); // bc=-400, be=50
        assert_eq!(n.bs_key(BsKey::BenefitDelta), 50.0);
        let m = node(100.0, 500.0, 600.0); // bc=-400, be=-500
        assert_eq!(m.bs_key(BsKey::BenefitDelta), -400.0);
    }

    #[test]
    fn spill_metric_prefers_cheap_high_degree() {
        let n = node(1000.0, 0.0, 0.0);
        assert!(n.spill_metric(10) < n.spill_metric(2));
        assert_eq!(n.spill_metric(0), 1000.0); // degree clamped to 1
    }
}
