//! The declarative alert engine: threshold and SLO burn-rate rules with
//! hysteresis and a pending → firing → resolved state machine.
//!
//! Rules are data ([`AlertRule`]), evaluated once per sample tick against
//! the latest points of the [`SeriesStore`](super::series::SeriesStore).
//! The state machine is deliberately boring:
//!
//! * **Inactive → Pending** the first tick the fire condition holds;
//! * **Pending → Firing** once it has held continuously for
//!   [`AlertRule::pending_us`] (zero fires on the same tick);
//! * **Pending → Inactive** the moment the fire condition lapses — a blip
//!   shorter than the pending window never pages;
//! * **Firing → Inactive** once the *clear* condition (a separate,
//!   stricter threshold — the hysteresis gap) has held continuously for
//!   [`AlertRule::resolve_us`]. Between the fire and clear thresholds the
//!   rule simply stays put, which is what suppresses flapping.
//!
//! Burn-rate rules follow the multiwindow SRE recipe: the rule reads a
//! short- and a long-window burn series (computed by the observatory from
//! per-interval over-SLO counts) and fires only when **both** exceed the
//! threshold — the long window proves real budget spend, the short window
//! proves it is still happening. The evaluated value is therefore
//! `min(short, long)`, which also makes clearing symmetric: as soon as
//! either window cools below the clear threshold the rule resolves.
//!
//! Every transition is returned to the caller (who records it into the
//! flight recorder) and kept in a bounded log for `/alerts`.

use std::collections::VecDeque;

use serde::json::Value;

use super::series::SeriesStore;

/// The fire/clear condition of a rule. Fire and clear thresholds differ
/// on purpose: the gap between them is the hysteresis band.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertCondition {
    /// Fires while `series`' latest raw value is strictly above `above`;
    /// clears while it is strictly below `clear_below`.
    Above {
        /// The series name to watch.
        series: String,
        /// Fire threshold (exclusive).
        above: f64,
        /// Clear threshold (exclusive, at or below `above`).
        clear_below: f64,
    },
    /// Fires while `series`' latest raw value is strictly below `below`;
    /// clears while it is strictly above `clear_above`.
    Below {
        /// The series name to watch.
        series: String,
        /// Fire threshold (exclusive).
        below: f64,
        /// Clear threshold (exclusive, at or above `below`).
        clear_above: f64,
    },
    /// SLO burn rate over two windows: fires while `min(short, long)` is
    /// strictly above `above` (i.e. both windows burn), clears while it
    /// is strictly below `clear_below`.
    BurnRate {
        /// The short-window burn series.
        short_series: String,
        /// The long-window burn series.
        long_series: String,
        /// Fire threshold on the smaller of the two burns (exclusive).
        above: f64,
        /// Clear threshold (exclusive).
        clear_below: f64,
    },
}

impl AlertCondition {
    /// Evaluates against the store's latest raw points. Returns
    /// `(fire_holds, clear_holds, observed_value)`; a missing series
    /// reads as "neither holds" with value 0 (never-pushed series must
    /// not fire or clear anything).
    fn eval(&self, store: &SeriesStore) -> (bool, bool, f64) {
        match self {
            AlertCondition::Above {
                series,
                above,
                clear_below,
            } => match store.latest(series) {
                Some(p) => (p.value > *above, p.value < *clear_below, p.value),
                None => (false, false, 0.0),
            },
            AlertCondition::Below {
                series,
                below,
                clear_above,
            } => match store.latest(series) {
                Some(p) => (p.value < *below, p.value > *clear_above, p.value),
                None => (false, false, 0.0),
            },
            AlertCondition::BurnRate {
                short_series,
                long_series,
                above,
                clear_below,
            } => match (store.latest(short_series), store.latest(long_series)) {
                (Some(s), Some(l)) => {
                    let v = s.value.min(l.value);
                    (v > *above, v < *clear_below, v)
                }
                _ => (false, false, 0.0),
            },
        }
    }

    /// A short human label for dumps.
    pub fn kind(&self) -> &'static str {
        match self {
            AlertCondition::Above { .. } => "above",
            AlertCondition::Below { .. } => "below",
            AlertCondition::BurnRate { .. } => "burn_rate",
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (appears in `/alerts`, `/healthz`, BENCH).
    pub name: String,
    /// When to fire and when to clear.
    pub condition: AlertCondition,
    /// How long the fire condition must hold continuously before the rule
    /// fires (0 = fire on the first violating tick).
    pub pending_us: u64,
    /// How long the clear condition must hold continuously before a
    /// firing rule resolves (0 = resolve on the first clearing tick).
    pub resolve_us: u64,
    /// Critical rules flip `/healthz` to 503 while firing.
    pub critical: bool,
}

/// Where a rule currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Fire condition not held (or never evaluated).
    Inactive,
    /// Fire condition holding, pending window not yet elapsed.
    Pending,
    /// Fired and not yet resolved.
    Firing,
}

impl AlertState {
    /// The label used in dumps.
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// What happened to a rule on a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Observatory-clock microseconds of the tick.
    pub ts_us: u64,
    /// Index of the rule in the engine's rule list.
    pub rule_index: usize,
    /// The rule's name.
    pub rule: String,
    /// `true` = fired, `false` = resolved.
    pub fired: bool,
    /// The observed value at the transition (for a resolve, the duration
    /// of the fire in microseconds is reported separately in stats).
    pub value: f64,
}

impl AlertTransition {
    /// Renders as a JSON object.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("ts_us".to_string(), Value::Int(self.ts_us as i64)),
            ("rule".to_string(), Value::Str(self.rule.clone())),
            (
                "event".to_string(),
                Value::Str(if self.fired { "fire" } else { "clear" }.to_string()),
            ),
            ("value".to_string(), Value::Float(self.value)),
        ])
    }
}

/// Cumulative per-rule stats, the BENCH `alerts` section's raw material.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRuleStats {
    /// The rule's name.
    pub rule: String,
    /// Current lifecycle state.
    pub state: AlertState,
    /// Whether the rule is critical.
    pub critical: bool,
    /// Most recently evaluated value.
    pub last_value: f64,
    /// Times the rule has fired.
    pub fires: u64,
    /// Worst (largest-magnitude violation) value observed while firing.
    pub worst_value: f64,
    /// Duration of the most recent completed fire→clear cycle, in
    /// microseconds (0 when the rule never resolved).
    pub time_to_clear_us: u64,
}

/// Per-rule mutable state.
#[derive(Debug)]
struct RuleRuntime {
    state: AlertState,
    pending_since_us: Option<u64>,
    clear_since_us: Option<u64>,
    fired_at_us: Option<u64>,
    last_value: f64,
    fires: u64,
    worst_value: f64,
    time_to_clear_us: u64,
}

impl RuleRuntime {
    fn new() -> Self {
        RuleRuntime {
            state: AlertState::Inactive,
            pending_since_us: None,
            clear_since_us: None,
            fired_at_us: None,
            last_value: 0.0,
            fires: 0,
            worst_value: 0.0,
            time_to_clear_us: 0,
        }
    }
}

/// The evaluator: rules, their runtimes, and a bounded transition log.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    runtime: Vec<RuleRuntime>,
    log: VecDeque<AlertTransition>,
    log_capacity: usize,
}

impl AlertEngine {
    /// An engine over a fixed rule list.
    pub fn new(rules: Vec<AlertRule>, log_capacity: usize) -> Self {
        let runtime = rules.iter().map(|_| RuleRuntime::new()).collect();
        AlertEngine {
            rules,
            runtime,
            log: VecDeque::new(),
            log_capacity: log_capacity.max(1),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluates every rule against the store's latest points, advancing
    /// state machines. Returns the transitions that occurred this tick
    /// (also appended to the bounded log).
    pub fn tick(&mut self, now_us: u64, store: &SeriesStore) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        for (i, (rule, rt)) in self.rules.iter().zip(self.runtime.iter_mut()).enumerate() {
            let (fire_holds, clear_holds, value) = rule.condition.eval(store);
            rt.last_value = value;
            match rt.state {
                AlertState::Inactive => {
                    if fire_holds {
                        rt.state = AlertState::Pending;
                        rt.pending_since_us = Some(now_us);
                    }
                }
                AlertState::Pending => {
                    if !fire_holds {
                        rt.state = AlertState::Inactive;
                        rt.pending_since_us = None;
                    }
                }
                AlertState::Firing => {
                    if value.abs() > rt.worst_value.abs() {
                        rt.worst_value = value;
                    }
                    if clear_holds {
                        let since = *rt.clear_since_us.get_or_insert(now_us);
                        if now_us.saturating_sub(since) >= rule.resolve_us {
                            rt.state = AlertState::Inactive;
                            rt.clear_since_us = None;
                            rt.time_to_clear_us =
                                now_us.saturating_sub(rt.fired_at_us.take().unwrap_or(now_us));
                            let t = AlertTransition {
                                ts_us: now_us,
                                rule_index: i,
                                rule: rule.name.clone(),
                                fired: false,
                                value,
                            };
                            out.push(t.clone());
                            Self::log_push(&mut self.log, self.log_capacity, t);
                        }
                    } else {
                        rt.clear_since_us = None;
                    }
                }
            }
            // Pending → Firing in the same tick the window elapses (and on
            // the entry tick itself when pending_us == 0).
            if rt.state == AlertState::Pending {
                let since = rt.pending_since_us.unwrap_or(now_us);
                if now_us.saturating_sub(since) >= rule.pending_us {
                    rt.state = AlertState::Firing;
                    rt.pending_since_us = None;
                    rt.clear_since_us = None;
                    rt.fired_at_us = Some(now_us);
                    rt.fires += 1;
                    if rt.fires == 1 || value.abs() > rt.worst_value.abs() {
                        rt.worst_value = value;
                    }
                    let t = AlertTransition {
                        ts_us: now_us,
                        rule_index: i,
                        rule: rule.name.clone(),
                        fired: true,
                        value,
                    };
                    out.push(t.clone());
                    Self::log_push(&mut self.log, self.log_capacity, t);
                }
            }
        }
        out
    }

    fn log_push(log: &mut VecDeque<AlertTransition>, capacity: usize, t: AlertTransition) {
        while log.len() >= capacity {
            log.pop_front();
        }
        log.push_back(t);
    }

    /// The name of some critical rule currently firing, if any (the first
    /// in rule order, for a deterministic `/healthz` body).
    pub fn critical_firing(&self) -> Option<&str> {
        self.rules
            .iter()
            .zip(self.runtime.iter())
            .find(|(r, rt)| r.critical && rt.state == AlertState::Firing)
            .map(|(r, _)| r.name.as_str())
    }

    /// A rule's current state by name.
    pub fn state_of(&self, rule: &str) -> Option<AlertState> {
        self.rules
            .iter()
            .zip(self.runtime.iter())
            .find(|(r, _)| r.name == rule)
            .map(|(_, rt)| rt.state)
    }

    /// Cumulative per-rule stats in rule order.
    pub fn stats(&self) -> Vec<AlertRuleStats> {
        self.rules
            .iter()
            .zip(self.runtime.iter())
            .map(|(r, rt)| AlertRuleStats {
                rule: r.name.clone(),
                state: rt.state,
                critical: r.critical,
                last_value: rt.last_value,
                fires: rt.fires,
                worst_value: rt.worst_value,
                time_to_clear_us: rt.time_to_clear_us,
            })
            .collect()
    }

    /// The `/alerts` document: per-rule states plus the recent transition
    /// log, oldest first.
    pub fn to_value(&self) -> Value {
        let rules = self
            .rules
            .iter()
            .zip(self.runtime.iter())
            .map(|(r, rt)| {
                Value::Obj(vec![
                    ("rule".to_string(), Value::Str(r.name.clone())),
                    (
                        "kind".to_string(),
                        Value::Str(r.condition.kind().to_string()),
                    ),
                    ("critical".to_string(), Value::Bool(r.critical)),
                    (
                        "state".to_string(),
                        Value::Str(rt.state.label().to_string()),
                    ),
                    ("value".to_string(), Value::Float(rt.last_value)),
                    ("fires".to_string(), Value::Int(rt.fires as i64)),
                    ("worst_value".to_string(), Value::Float(rt.worst_value)),
                    (
                        "time_to_clear_us".to_string(),
                        Value::Int(rt.time_to_clear_us as i64),
                    ),
                ])
            })
            .collect();
        let transitions = self.log.iter().map(AlertTransition::to_value).collect();
        Value::Obj(vec![
            ("rules".to_string(), Value::Arr(rules)),
            ("transitions".to_string(), Value::Arr(transitions)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: u64 = 2_000_000;

    fn above_rule(pending_us: u64, resolve_us: u64) -> AlertRule {
        AlertRule {
            name: "hot".to_string(),
            condition: AlertCondition::Above {
                series: "x".to_string(),
                above: 10.0,
                clear_below: 5.0,
            },
            pending_us,
            resolve_us,
            critical: true,
        }
    }

    /// Drives one engine tick with `value` as the series' newest point.
    fn drive(
        engine: &mut AlertEngine,
        store: &mut SeriesStore,
        now_us: u64,
        value: f64,
    ) -> Vec<AlertTransition> {
        store.push("x", now_us, value);
        engine.tick(now_us, store)
    }

    #[test]
    fn pending_window_not_yet_elapsed_suppresses_the_fire() {
        let mut store = SeriesStore::new(100, 100, 15);
        let mut engine = AlertEngine::new(vec![above_rule(5_000_000, 0)], 16);
        // Violating, but only for two ticks (4s) of a 5s pending window.
        assert!(drive(&mut engine, &mut store, 0, 50.0).is_empty());
        assert_eq!(engine.state_of("hot"), Some(AlertState::Pending));
        assert!(drive(&mut engine, &mut store, TICK, 50.0).is_empty());
        assert_eq!(engine.state_of("hot"), Some(AlertState::Pending));
        // The blip ends before the window elapses: straight back to
        // inactive, no transition ever logged.
        assert!(drive(&mut engine, &mut store, 2 * TICK, 1.0).is_empty());
        assert_eq!(engine.state_of("hot"), Some(AlertState::Inactive));
        assert_eq!(engine.stats()[0].fires, 0);
        assert!(engine.critical_firing().is_none());
        // Held long enough, it fires exactly when the window elapses:
        // pending since t=3 ticks (6s), 5s window → first tick at or past
        // 11s is t=6 ticks (12s).
        for (i, t) in [3u64, 4, 5, 6].iter().enumerate() {
            let out = drive(&mut engine, &mut store, *t * TICK, 50.0);
            if i < 3 {
                assert!(out.is_empty(), "tick {i} still pending");
            } else {
                assert_eq!(out.len(), 1);
                assert!(out[0].fired);
            }
        }
        assert_eq!(engine.state_of("hot"), Some(AlertState::Firing));
        assert_eq!(engine.critical_firing(), Some("hot"));
    }

    #[test]
    fn hysteresis_band_suppresses_flapping() {
        let mut store = SeriesStore::new(100, 100, 15);
        let mut engine = AlertEngine::new(vec![above_rule(0, 0)], 16);
        let out = drive(&mut engine, &mut store, 0, 50.0);
        assert_eq!(out.len(), 1, "pending_us=0 fires on the first tick");
        // Oscillating inside the hysteresis band (5.0 .. 10.0): the rule
        // neither clears nor re-fires, no matter how long it bounces.
        for t in 1..20u64 {
            let v = if t % 2 == 0 { 6.0 } else { 9.0 };
            assert!(drive(&mut engine, &mut store, t * TICK, v).is_empty());
            assert_eq!(engine.state_of("hot"), Some(AlertState::Firing));
        }
        assert_eq!(engine.stats()[0].fires, 1, "no flap re-fires");
        // Only dropping below the clear threshold resolves it.
        let out = drive(&mut engine, &mut store, 20 * TICK, 1.0);
        assert_eq!(out.len(), 1);
        assert!(!out[0].fired);
        assert_eq!(engine.state_of("hot"), Some(AlertState::Inactive));
        assert_eq!(engine.stats()[0].time_to_clear_us, 20 * TICK);
    }

    #[test]
    fn resolve_needs_the_clear_window_then_the_rule_can_refire() {
        let mut store = SeriesStore::new(100, 100, 15);
        // resolve_us = 2 ticks worth.
        let mut engine = AlertEngine::new(vec![above_rule(0, 2 * TICK)], 16);
        assert_eq!(drive(&mut engine, &mut store, 0, 99.0).len(), 1);
        // Clear condition holds but the resolve window hasn't elapsed.
        assert!(drive(&mut engine, &mut store, TICK, 1.0).is_empty());
        assert_eq!(engine.state_of("hot"), Some(AlertState::Firing));
        // A re-violation resets the clear window.
        assert!(drive(&mut engine, &mut store, 2 * TICK, 50.0).is_empty());
        assert!(drive(&mut engine, &mut store, 3 * TICK, 1.0).is_empty());
        assert!(drive(&mut engine, &mut store, 4 * TICK, 1.0).is_empty());
        // Now the clear has held 2 full ticks (t=3..t=5): resolves.
        let out = drive(&mut engine, &mut store, 5 * TICK, 1.0);
        assert_eq!(out.len(), 1);
        assert!(!out[0].fired);
        // And the rule can fire again from scratch.
        let out = drive(&mut engine, &mut store, 6 * TICK, 77.0);
        assert_eq!(out.len(), 1);
        assert!(out[0].fired);
        let stats = &engine.stats()[0];
        assert_eq!(stats.fires, 2);
        assert!((stats.worst_value - 99.0).abs() < 1e-9);
        assert_eq!(stats.time_to_clear_us, 5 * TICK);
    }

    #[test]
    fn burn_rate_needs_both_windows_hot_and_either_cool_to_clear() {
        let rule = AlertRule {
            name: "burn".to_string(),
            condition: AlertCondition::BurnRate {
                short_series: "s".to_string(),
                long_series: "l".to_string(),
                above: 2.0,
                clear_below: 1.0,
            },
            pending_us: 0,
            resolve_us: 0,
            critical: true,
        };
        let mut store = SeriesStore::new(100, 100, 15);
        let mut engine = AlertEngine::new(vec![rule], 16);
        // Only the short window hot: min() stays low, no fire.
        store.push("s", 0, 30.0);
        store.push("l", 0, 0.5);
        assert!(engine.tick(0, &store).is_empty());
        // Both hot: fires.
        store.push("s", TICK, 30.0);
        store.push("l", TICK, 10.0);
        let out = engine.tick(TICK, &store);
        assert_eq!(out.len(), 1);
        assert!(out[0].fired);
        assert!((out[0].value - 10.0).abs() < 1e-9);
        // Short cools below clear while long still hot: resolves.
        store.push("s", 2 * TICK, 0.0);
        store.push("l", 2 * TICK, 8.0);
        let out = engine.tick(2 * TICK, &store);
        assert_eq!(out.len(), 1);
        assert!(!out[0].fired);
    }

    #[test]
    fn missing_series_neither_fires_nor_clears() {
        let mut store = SeriesStore::new(100, 100, 15);
        let mut engine = AlertEngine::new(vec![above_rule(0, 0)], 16);
        assert!(engine.tick(0, &store).is_empty());
        assert_eq!(engine.state_of("hot"), Some(AlertState::Inactive));
        // Fire normally, then stop pushing the series: stays firing.
        drive(&mut engine, &mut store, TICK, 50.0);
        assert_eq!(engine.state_of("hot"), Some(AlertState::Firing));
    }

    #[test]
    fn transition_log_is_bounded() {
        let mut store = SeriesStore::new(100, 100, 15);
        let mut engine = AlertEngine::new(vec![above_rule(0, 0)], 4);
        for t in 0..10u64 {
            // Alternate fire / clear every tick: 20 transitions total.
            drive(&mut engine, &mut store, (2 * t) * TICK, 50.0);
            drive(&mut engine, &mut store, (2 * t + 1) * TICK, 1.0);
        }
        let doc = engine.to_value();
        let transitions = match doc.get("transitions") {
            Some(Value::Arr(a)) => a,
            other => panic!("transitions array expected, got {other:?}"),
        };
        assert_eq!(transitions.len(), 4, "log keeps only the newest entries");
        assert_eq!(engine.stats()[0].fires, 10);
    }
}
