//! The ops observatory: in-process time-series history and SLO alerting
//! over the serving stack's live metrics.
//!
//! Everything the service exports today is a point-in-time value — a
//! cumulative counter, the current queue depth, a whole-run histogram.
//! The observatory gives those numbers a memory and a judgement:
//!
//! * [`Observatory::tick`] snapshots a [`MetricsRegistry`] and differences
//!   it against the previous snapshot (via the registry's
//!   [`CounterSnapshot`]/[`HistogramSnapshot`] helpers), pushing
//!   per-interval **rates** (`rate:<counter>`), raw **gauges**
//!   (`gauge:<name>`), interval **quantiles** (`p50:<histogram>`,
//!   `p99:<histogram>` — so per-priority e2e p50/p99 come for free), and
//!   **derived** series: queue-delay mean, **queue-delay slope** (a
//!   windowed least-squares regression, the input ROADMAP item 3's
//!   gradient limiter wants), short/long-window SLO burn rates, and the
//!   cache hit rate — into the two-tier bounded rings of
//!   [`series::SeriesStore`].
//! * The [`alerts::AlertEngine`] then evaluates declarative rules
//!   (threshold and multiwindow burn-rate, with hysteresis and a
//!   pending → firing → resolved state machine) against the freshest
//!   points and returns the tick's transitions, which the batch service
//!   records into the flight recorder as
//!   [`FlightKind::AlertFire`]/[`FlightKind::AlertClear`] events.
//!
//! **Determinism quarantine.** The observatory only ever *reads* service
//! state; nothing it computes feeds back into allocation, scheduling, or
//! admission. Sampling and alerting on or off, early or late, can change
//! what `/history` and `/alerts` say — never a single byte of allocator
//! output. (The byte-determinism oracle runs with the observatory
//! enabled to hold that claim to measure.) Time itself is injected
//! through [`Clock`], so tests and the chaos harness drive ticks with a
//! [`ManualClock`] and get bit-identical series and alert timelines.
//!
//! A disabled observatory ([`Observatory::disabled`]) costs one branch
//! per tick, the same contract as a disabled [`MetricsRegistry`] or
//! [`FlightRecorder`](crate::FlightRecorder).
//!
//! [`FlightKind::AlertFire`]: crate::FlightKind::AlertFire
//! [`FlightKind::AlertClear`]: crate::FlightKind::AlertClear

pub mod alerts;
pub mod series;

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::json::Value;

use crate::metrics::{CounterSnapshot, HistogramSnapshot, MetricsRegistry};

pub use alerts::{
    AlertCondition, AlertEngine, AlertRule, AlertRuleStats, AlertState, AlertTransition,
};
pub use series::{slope_per_second, SeriesPoint, SeriesStore, Tier};

/// The histogram the SLO burn rate classifies (the batch service's
/// end-to-end latency histogram).
pub const E2E_HISTOGRAM: &str = "batch_e2e_micros";
/// The histogram queue-delay series derive from.
pub const QUEUE_WAIT_HISTOGRAM: &str = "batch_queue_wait_micros";

/// Derived series: per-interval mean queue wait, microseconds.
pub const SERIES_QUEUE_DELAY_MEAN: &str = "derived:queue_delay_mean_us";
/// Derived series: regression slope of the queue-delay mean, in
/// microseconds of added delay per second.
pub const SERIES_QUEUE_DELAY_SLOPE: &str = "derived:queue_delay_slope_us_per_s";
/// Derived series: short-window SLO burn rate.
pub const SERIES_BURN_SHORT: &str = "derived:e2e_burn_short";
/// Derived series: long-window SLO burn rate.
pub const SERIES_BURN_LONG: &str = "derived:e2e_burn_long";
/// Derived series: per-interval cache hit rate (1.0 when idle).
pub const SERIES_CACHE_HIT_RATE: &str = "derived:cache_hit_rate";

/// Default rule name: e2e-p99 SLO burn (critical).
pub const RULE_E2E_BURN: &str = "e2e_p99_slo_burn";
/// Default rule name: admission shed rate high.
pub const RULE_SHED_RATE: &str = "shed_rate_high";
/// Default rule name: queue delay trending up.
pub const RULE_QUEUE_DELAY_SLOPE: &str = "queue_delay_rising";
/// Default rule name: memo-cache hit rate collapsed.
pub const RULE_CACHE_COLLAPSE: &str = "cache_hit_collapse";

/// A monotonic microsecond clock the observatory reads instead of
/// `Instant::now()`, so tests and the chaos harness substitute a
/// [`ManualClock`] and make every tick timestamp (and therefore every
/// series point and alert transition) deterministic.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Microseconds since the clock's epoch. Must be monotone
    /// non-decreasing.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds since construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-cranked clock for tests and the chaos harness: time advances
/// only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    /// A clock reading 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock reading `us`.
    pub fn at(us: u64) -> Self {
        ManualClock {
            us: AtomicU64::new(us),
        }
    }

    /// Sets the reading (should not go backwards).
    pub fn set(&self, us: u64) {
        self.us.store(us, Ordering::SeqCst);
    }

    /// Advances the reading by `us` and returns the new value.
    pub fn advance(&self, us: u64) -> u64 {
        self.us.fetch_add(us, Ordering::SeqCst) + us
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.us.load(Ordering::SeqCst)
    }
}

/// Observatory configuration. `Default` gives the production shape: 2s
/// raw ticks retained for ~5 minutes, a 30s downsampled tier retained
/// for ~2 hours, a background sampler thread on the wall clock, and the
/// [`default_rules`] alert set.
#[derive(Debug, Clone)]
pub struct ObsvConfig {
    /// Nominal microseconds between samples (raw-tier resolution).
    pub raw_interval_us: u64,
    /// Points retained per series in the raw tier.
    pub raw_capacity: usize,
    /// Raw points aggregated into one downsampled point.
    pub ds_factor: usize,
    /// Points retained per series in the downsampled tier.
    pub ds_capacity: usize,
    /// Raw points in the queue-delay regression window.
    pub slope_window: usize,
    /// Sample intervals in the short burn window.
    pub burn_short_window: usize,
    /// Sample intervals in the long burn window.
    pub burn_long_window: usize,
    /// The e2e latency SLO observations are classified against.
    pub e2e_slo_us: u64,
    /// The SLO objective (fraction of requests that must be on time);
    /// the error budget is `1 - slo_objective`.
    pub slo_objective: f64,
    /// Alert rules; `None` uses [`default_rules`].
    pub rules: Option<Vec<AlertRule>>,
    /// Bounded alert transition log size.
    pub alert_log_capacity: usize,
    /// Whether the owning service should run a background sampler thread.
    /// `false` means the caller drives [`Observatory::tick`] by hand —
    /// how tests and the chaos harness stay deterministic.
    pub sampler_thread: bool,
    /// The time source.
    pub clock: Arc<dyn Clock>,
}

impl Default for ObsvConfig {
    fn default() -> Self {
        ObsvConfig {
            raw_interval_us: 2_000_000,
            raw_capacity: 150,
            ds_factor: 15,
            ds_capacity: 240,
            slope_window: 15,
            burn_short_window: 5,
            burn_long_window: 30,
            e2e_slo_us: 50_000,
            slo_objective: 0.99,
            rules: None,
            alert_log_capacity: 64,
            sampler_thread: true,
            clock: Arc::new(WallClock::new()),
        }
    }
}

/// The default alert set: e2e-p99 SLO burn (critical), shed rate, queue
/// delay slope, and cache hit-rate collapse. `raw_interval_us` scales the
/// time-based pending/resolve windows; `e2e_slo_us` scales the slope
/// thresholds (delay growing at half the SLO per second exhausts the
/// whole budget within two ticks).
pub fn default_rules(raw_interval_us: u64, e2e_slo_us: u64) -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: RULE_E2E_BURN.to_string(),
            condition: AlertCondition::BurnRate {
                short_series: SERIES_BURN_SHORT.to_string(),
                long_series: SERIES_BURN_LONG.to_string(),
                above: 2.0,
                clear_below: 1.0,
            },
            pending_us: 0,
            resolve_us: 0,
            critical: true,
        },
        AlertRule {
            name: RULE_SHED_RATE.to_string(),
            condition: AlertCondition::Above {
                series: "rate:batch_jobs_shed_total".to_string(),
                above: 1.0,
                clear_below: 0.1,
            },
            pending_us: 0,
            resolve_us: raw_interval_us,
            critical: false,
        },
        AlertRule {
            name: RULE_QUEUE_DELAY_SLOPE.to_string(),
            condition: AlertCondition::Above {
                series: SERIES_QUEUE_DELAY_SLOPE.to_string(),
                above: e2e_slo_us as f64 / 2.0,
                clear_below: e2e_slo_us as f64 / 10.0,
            },
            pending_us: raw_interval_us,
            resolve_us: raw_interval_us,
            critical: false,
        },
        AlertRule {
            name: RULE_CACHE_COLLAPSE.to_string(),
            condition: AlertCondition::Below {
                series: SERIES_CACHE_HIT_RATE.to_string(),
                below: 0.5,
                clear_above: 0.8,
            },
            pending_us: 2 * raw_interval_us,
            resolve_us: raw_interval_us,
            critical: false,
        },
    ]
}

/// Everything behind the observatory's lock.
#[derive(Debug)]
struct Inner {
    store: SeriesStore,
    engine: AlertEngine,
    /// The previous registry snapshot; interval deltas difference against it.
    prev: Option<MetricsRegistry>,
    /// Per-interval `(over_slo, total)` e2e observation counts, newest
    /// last, bounded by the long burn window.
    burn: VecDeque<(u64, u64)>,
    last_tick_us: Option<u64>,
    ticks: u64,
}

/// The sampler + alert evaluator. Shared behind an `Arc` between the
/// batch service (which owns ticking) and the status server (which only
/// reads histories and alert state).
#[derive(Debug)]
pub struct Observatory {
    enabled: bool,
    config: ObsvConfig,
    budget: f64,
    inner: Mutex<Inner>,
}

impl Observatory {
    /// An enabled observatory.
    pub fn new(config: ObsvConfig) -> Self {
        let rules = config
            .rules
            .clone()
            .unwrap_or_else(|| default_rules(config.raw_interval_us, config.e2e_slo_us));
        let inner = Inner {
            store: SeriesStore::new(config.raw_capacity, config.ds_capacity, config.ds_factor),
            engine: AlertEngine::new(rules, config.alert_log_capacity),
            prev: None,
            burn: VecDeque::new(),
            last_tick_us: None,
            ticks: 0,
        };
        let budget = (1.0 - config.slo_objective).max(1e-9);
        Observatory {
            enabled: true,
            config,
            budget,
            inner: Mutex::new(inner),
        }
    }

    /// An observatory that ignores every tick — one branch per call.
    pub fn disabled() -> Self {
        let mut o = Observatory::new(ObsvConfig {
            raw_capacity: 0,
            ds_capacity: 0,
            rules: Some(Vec::new()),
            sampler_thread: false,
            ..ObsvConfig::default()
        });
        o.enabled = false;
        o
    }

    /// Whether ticks record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configuration (rules resolved at construction are in the
    /// engine, not here).
    pub fn config(&self) -> &ObsvConfig {
        &self.config
    }

    /// The injected time source.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.config.clock)
    }

    /// Whether the owning service should run the background sampler.
    pub fn wants_sampler_thread(&self) -> bool {
        self.enabled && self.config.sampler_thread
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Samples the registry and evaluates alerts, unconditionally.
    /// Returns this tick's alert transitions (the caller records them
    /// into its flight recorder).
    pub fn tick(&self, metrics: &MetricsRegistry) -> Vec<AlertTransition> {
        if !self.enabled {
            return Vec::new();
        }
        let now = self.config.clock.now_us();
        self.lock().sample(now, metrics, &self.config, self.budget)
    }

    /// [`Observatory::tick`], but only if a full sample interval has
    /// elapsed since the last tick — what the background sampler calls in
    /// its poll loop.
    pub fn maybe_tick(&self, metrics: &MetricsRegistry) -> Vec<AlertTransition> {
        if !self.enabled {
            return Vec::new();
        }
        let now = self.config.clock.now_us();
        let due = {
            let inner = self.lock();
            match inner.last_tick_us {
                Some(t) => now.saturating_sub(t) >= self.config.raw_interval_us,
                None => true,
            }
        };
        if due {
            self.lock().sample(now, metrics, &self.config, self.budget)
        } else {
            Vec::new()
        }
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.lock().ticks
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.lock().store.names()
    }

    /// A series' retained points at a tier, oldest first; `None` for a
    /// series that has never been sampled.
    pub fn history(&self, series: &str, tier: Tier) -> Option<Vec<SeriesPoint>> {
        self.lock().store.history(series, tier)
    }

    /// The `/history` response document for one series, or `None` when
    /// the series is unknown.
    pub fn history_value(&self, series: &str, tier: Tier) -> Option<Value> {
        let points = self.history(series, tier)?;
        Some(Value::Obj(vec![
            ("series".to_string(), Value::Str(series.to_string())),
            ("tier".to_string(), Value::Str(tier.label().to_string())),
            (
                "points".to_string(),
                Value::Arr(points.iter().map(SeriesPoint::to_value).collect()),
            ),
        ]))
    }

    /// The `/alerts` response document: rule states plus the recent
    /// transition log, with the tick count and series inventory.
    pub fn alerts_value(&self) -> Value {
        let inner = self.lock();
        let mut doc = match inner.engine.to_value() {
            Value::Obj(fields) => fields,
            _ => Vec::new(),
        };
        doc.insert(0, ("enabled".to_string(), Value::Bool(self.enabled)));
        doc.insert(1, ("ticks".to_string(), Value::Int(inner.ticks as i64)));
        Value::Obj(doc)
    }

    /// The name of a critical rule currently firing, if any.
    pub fn critical_firing(&self) -> Option<String> {
        self.lock().engine.critical_firing().map(str::to_string)
    }

    /// A rule's current state by name.
    pub fn alert_state(&self, rule: &str) -> Option<AlertState> {
        self.lock().engine.state_of(rule)
    }

    /// Cumulative per-rule stats in rule order.
    pub fn alert_stats(&self) -> Vec<AlertRuleStats> {
        self.lock().engine.stats()
    }
}

impl Inner {
    fn sample(
        &mut self,
        now_us: u64,
        metrics: &MetricsRegistry,
        config: &ObsvConfig,
        budget: f64,
    ) -> Vec<AlertTransition> {
        let empty = MetricsRegistry::new();
        let prev = self.prev.as_ref().unwrap_or(&empty);
        // Interval length for rate math; the first tick uses the nominal
        // interval (its deltas cover "everything so far").
        let interval_us = match self.last_tick_us {
            Some(t) => now_us.saturating_sub(t).max(1),
            None => config.raw_interval_us.max(1),
        };
        let secs = interval_us as f64 / 1_000_000.0;

        // Counters → per-second rates.
        for (name, _) in metrics.counters() {
            let delta = CounterSnapshot::of(metrics, name).delta(&CounterSnapshot::of(prev, name));
            self.store
                .push(&format!("rate:{name}"), now_us, delta as f64 / secs);
        }
        // Gauges pass through.
        for (name, value) in metrics.gauges() {
            self.store.push(&format!("gauge:{name}"), now_us, value);
        }
        // Histograms → interval p50/p99 (held at the previous value over
        // intervals with no observations, so quiet periods read as flat
        // rather than as zero-latency).
        for (name, _) in metrics.histograms() {
            let delta =
                HistogramSnapshot::of(metrics, name).delta(&HistogramSnapshot::of(prev, name));
            for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
                let series = format!("{label}:{name}");
                let value = if delta.count() > 0 {
                    delta.quantile(q) as f64
                } else {
                    self.store.latest(&series).map(|p| p.value).unwrap_or(0.0)
                };
                self.store.push(&series, now_us, value);
            }
        }

        // Queue-delay mean (exact, from delta sum/count) and its slope.
        let qw = HistogramSnapshot::of(metrics, QUEUE_WAIT_HISTOGRAM)
            .delta(&HistogramSnapshot::of(prev, QUEUE_WAIT_HISTOGRAM));
        let mean = if qw.count() > 0 {
            qw.mean()
        } else {
            self.store
                .latest(SERIES_QUEUE_DELAY_MEAN)
                .map(|p| p.value)
                .unwrap_or(0.0)
        };
        self.store.push(SERIES_QUEUE_DELAY_MEAN, now_us, mean);
        let slope = slope_per_second(
            &self
                .store
                .tail(SERIES_QUEUE_DELAY_MEAN, config.slope_window),
        );
        self.store.push(SERIES_QUEUE_DELAY_SLOPE, now_us, slope);

        // SLO burn over short and long windows. `count_over` undercounts
        // by at most the bucket straddling the SLO (a factor of two),
        // which biases burn *down* — the alert never fires on bucket
        // rounding alone.
        let e2e = HistogramSnapshot::of(metrics, E2E_HISTOGRAM)
            .delta(&HistogramSnapshot::of(prev, E2E_HISTOGRAM));
        let bad = e2e.count_over(config.e2e_slo_us);
        while self.burn.len() >= config.burn_long_window.max(1) {
            self.burn.pop_front();
        }
        self.burn.push_back((bad, e2e.count()));
        let burn_over = |window: usize| -> f64 {
            let (mut bad, mut total) = (0u64, 0u64);
            for &(b, t) in self.burn.iter().rev().take(window) {
                bad += b;
                total += t;
            }
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        self.store.push(
            SERIES_BURN_SHORT,
            now_us,
            burn_over(config.burn_short_window),
        );
        self.store
            .push(SERIES_BURN_LONG, now_us, burn_over(config.burn_long_window));

        // Cache hit rate over the interval; an idle interval reads as
        // healthy (1.0) so the collapse alert can't fire on silence.
        let hits = CounterSnapshot::of(metrics, "cache_hits_total")
            .delta(&CounterSnapshot::of(prev, "cache_hits_total"));
        let misses = CounterSnapshot::of(metrics, "cache_misses_total")
            .delta(&CounterSnapshot::of(prev, "cache_misses_total"));
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            1.0
        } else {
            hits as f64 / lookups as f64
        };
        self.store.push(SERIES_CACHE_HIT_RATE, now_us, hit_rate);

        self.prev = Some(metrics.clone());
        self.last_tick_us = Some(now_us);
        self.ticks += 1;
        self.engine.tick(now_us, &self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: u64 = 2_000_000;

    /// A manual-clock observatory with production-shaped windows.
    fn manual_obsv() -> (Arc<ManualClock>, Observatory) {
        let clock = Arc::new(ManualClock::new());
        let obsv = Observatory::new(ObsvConfig {
            clock: clock.clone() as Arc<dyn Clock>,
            sampler_thread: false,
            e2e_slo_us: 50_000,
            ..ObsvConfig::default()
        });
        (clock, obsv)
    }

    #[test]
    fn disabled_observatory_records_nothing() {
        let obsv = Observatory::disabled();
        assert!(!obsv.is_enabled());
        let mut m = MetricsRegistry::new();
        m.add("c", 5);
        assert!(obsv.tick(&m).is_empty());
        assert!(obsv.maybe_tick(&m).is_empty());
        assert_eq!(obsv.ticks(), 0);
        assert!(obsv.series_names().is_empty());
        assert!(obsv.history("rate:c", Tier::Raw).is_none());
        assert!(obsv.critical_firing().is_none());
    }

    #[test]
    fn rates_and_interval_quantiles_come_from_deltas() {
        let (clock, obsv) = manual_obsv();
        let mut m = MetricsRegistry::new();
        m.add("jobs_total", 10);
        m.observe("lat", 100);
        clock.set(TICK);
        obsv.tick(&m);
        // Second interval: +6 jobs over 2 seconds → rate 3/s; latency
        // observations move to ~1000 so the interval p50 tracks only the
        // new ones, not the cumulative distribution.
        m.add("jobs_total", 6);
        for _ in 0..10 {
            m.observe("lat", 1000);
        }
        clock.set(2 * TICK);
        obsv.tick(&m);
        let rate = obsv.history("rate:jobs_total", Tier::Raw).unwrap();
        assert_eq!(rate.len(), 2);
        assert!((rate[1].value - 3.0).abs() < 1e-9);
        assert_eq!(rate[1].ts_us, 2 * TICK);
        let p50 = obsv.history("p50:lat", Tier::Raw).unwrap();
        assert_eq!(p50[1].value, 1023.0, "interval p50, not cumulative");
        // A silent third interval holds the last quantile and zeroes the rate.
        clock.set(3 * TICK);
        obsv.tick(&m);
        let rate = obsv.history("rate:jobs_total", Tier::Raw).unwrap();
        assert_eq!(rate[2].value, 0.0);
        let p50 = obsv.history("p50:lat", Tier::Raw).unwrap();
        assert_eq!(p50[2].value, 1023.0, "held over the quiet interval");
    }

    #[test]
    fn maybe_tick_gates_on_the_sample_interval() {
        let (clock, obsv) = manual_obsv();
        let m = MetricsRegistry::new();
        clock.set(TICK);
        obsv.maybe_tick(&m);
        assert_eq!(obsv.ticks(), 1);
        // Not a full interval later: no tick.
        clock.set(TICK + TICK / 2);
        obsv.maybe_tick(&m);
        assert_eq!(obsv.ticks(), 1);
        clock.set(2 * TICK);
        obsv.maybe_tick(&m);
        assert_eq!(obsv.ticks(), 2);
    }

    #[test]
    fn rising_queue_delay_pins_the_slope_series() {
        let (clock, obsv) = manual_obsv();
        let mut m = MetricsRegistry::new();
        // Synthetic rising-delay workload: each 2s tick observes one
        // queue wait whose value grows by exactly 10_000us per tick, so
        // the interval means rise 10_000us per 2s → slope 5_000 us/s.
        for i in 1..=20u64 {
            m.observe(QUEUE_WAIT_HISTOGRAM, 10_000 * i);
            clock.set(i * TICK);
            obsv.tick(&m);
        }
        let means = obsv.history(SERIES_QUEUE_DELAY_MEAN, Tier::Raw).unwrap();
        assert_eq!(means.last().unwrap().value, 200_000.0, "exact delta mean");
        let slopes = obsv.history(SERIES_QUEUE_DELAY_SLOPE, Tier::Raw).unwrap();
        assert!(
            (slopes.last().unwrap().value - 5_000.0).abs() < 1e-6,
            "regression recovers the synthetic 5_000 us/s trend, got {}",
            slopes.last().unwrap().value
        );
        // 5_000 us/s < slo/2 = 25_000: the slope rule correctly stays
        // quiet on a trend that cannot exhaust the SLO between ticks.
        assert_eq!(
            obsv.alert_state(RULE_QUEUE_DELAY_SLOPE),
            Some(AlertState::Inactive)
        );
        // Steepen the trend past the threshold: +100_000us per tick
        // (50_000 us/s > 25_000) and hold it past the pending window.
        let mut last = 200_000;
        for i in 21..=30u64 {
            last += 100_000;
            m.observe(QUEUE_WAIT_HISTOGRAM, last);
            clock.set(i * TICK);
            obsv.tick(&m);
        }
        assert_eq!(
            obsv.alert_state(RULE_QUEUE_DELAY_SLOPE),
            Some(AlertState::Firing),
            "steep rising delay fires the slope rule"
        );
    }

    #[test]
    fn slo_burn_fires_during_overload_and_resolves_after_recovery() {
        let (clock, obsv) = manual_obsv();
        let mut m = MetricsRegistry::new();
        let mut now = 0;
        // Healthy traffic: everything far under the 50ms SLO.
        for _ in 0..3 {
            for _ in 0..20 {
                m.observe(E2E_HISTOGRAM, 1_000);
            }
            now += TICK;
            clock.set(now);
            assert!(obsv.tick(&m).is_empty(), "no alerts while healthy");
        }
        // Overload: a burst of observations far over the SLO. Both burn
        // windows heat immediately and the critical rule fires this tick.
        for _ in 0..50 {
            m.observe(E2E_HISTOGRAM, 1_000_000);
        }
        now += TICK;
        clock.set(now);
        let fired = obsv.tick(&m);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
        assert_eq!(fired[0].rule, RULE_E2E_BURN);
        assert_eq!(obsv.critical_firing().as_deref(), Some(RULE_E2E_BURN));
        // Recovery: on-time completions. The short window cools once the
        // storm interval ages out of it; the alert then resolves.
        let mut resolved = false;
        for _ in 0..10 {
            for _ in 0..20 {
                m.observe(E2E_HISTOGRAM, 1_000);
            }
            now += TICK;
            clock.set(now);
            for t in obsv.tick(&m) {
                if t.rule == RULE_E2E_BURN && !t.fired {
                    resolved = true;
                }
            }
        }
        assert!(resolved, "burn alert resolves after recovery");
        assert!(obsv.critical_firing().is_none());
        let stats = obsv
            .alert_stats()
            .into_iter()
            .find(|s| s.rule == RULE_E2E_BURN)
            .unwrap();
        assert_eq!(stats.fires, 1);
        assert!(stats.worst_value > 2.0);
        assert!(stats.time_to_clear_us > 0);
        // The whole episode is visible in the burn series.
        let short = obsv.history(SERIES_BURN_SHORT, Tier::Raw).unwrap();
        assert!(short.iter().any(|p| p.value > 2.0));
        assert_eq!(short.last().unwrap().value, 0.0);
    }

    #[test]
    fn alerts_value_and_history_value_render_json_documents() {
        let (clock, obsv) = manual_obsv();
        let mut m = MetricsRegistry::new();
        m.add("c", 1);
        clock.set(TICK);
        obsv.tick(&m);
        let doc = obsv.alerts_value();
        assert_eq!(doc.get("enabled"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("ticks").and_then(Value::as_i64), Some(1));
        assert!(doc.get("rules").is_some());
        let hist = obsv
            .history_value("rate:c", Tier::Raw)
            .expect("known series");
        assert_eq!(hist.get("tier").and_then(Value::as_str), Some("raw"));
        let parsed = serde::json::parse(&hist.to_json()).expect("valid JSON");
        assert!(parsed.get("points").is_some());
        assert!(obsv.history_value("rate:nope", Tier::Raw).is_none());
        // The default series inventory includes every derived series.
        let names = obsv.series_names();
        for s in [
            SERIES_QUEUE_DELAY_MEAN,
            SERIES_QUEUE_DELAY_SLOPE,
            SERIES_BURN_SHORT,
            SERIES_BURN_LONG,
            SERIES_CACHE_HIT_RATE,
        ] {
            assert!(names.iter().any(|n| n == s), "missing {s}");
        }
    }
}
