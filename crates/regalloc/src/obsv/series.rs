//! Fixed-size two-tier time-series storage for the observatory.
//!
//! Every sample tick pushes one [`SeriesPoint`] per series into a raw-tier
//! ring (nominal ~2s resolution); every [`SeriesStore::ds_factor`] raw
//! pushes, their mean lands in a downsampled ring (nominal ~30s
//! resolution) stamped with the last contributing raw timestamp. Both
//! rings are bounded — memory is fixed no matter how long the service
//! runs — and eviction is strictly oldest-first, so `history` always
//! returns a contiguous, time-ordered suffix of the series.
//!
//! The downsample accumulator is per-series but advances in lockstep
//! because the sampler pushes every series exactly once per tick; the
//! tiers therefore stay aligned across series without any global clock in
//! this module.

use std::collections::{BTreeMap, VecDeque};

use serde::json::Value;

/// One observation: a timestamp (microseconds on the observatory's
/// injected clock) and a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Microseconds since the observatory clock's epoch.
    pub ts_us: u64,
    /// The sampled or derived value.
    pub value: f64,
}

impl SeriesPoint {
    /// Renders as `{"ts_us": ..., "value": ...}`.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("ts_us".to_string(), Value::Int(self.ts_us as i64)),
            ("value".to_string(), Value::Float(self.value)),
        ])
    }
}

/// Which resolution tier of a series to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The full-resolution ring (one point per sample tick).
    Raw,
    /// The downsampled ring (one point per `ds_factor` ticks).
    Downsampled,
}

impl Tier {
    /// Parses the `tier=` query value: `raw` or `ds`.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "raw" => Some(Tier::Raw),
            "ds" => Some(Tier::Downsampled),
            _ => None,
        }
    }

    /// The label used in URLs and dumps.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Raw => "raw",
            Tier::Downsampled => "ds",
        }
    }
}

/// A bounded ring of points, evicted oldest-first.
#[derive(Debug, Default)]
struct Ring {
    points: VecDeque<SeriesPoint>,
}

impl Ring {
    fn push(&mut self, capacity: usize, point: SeriesPoint) {
        if capacity == 0 {
            return;
        }
        while self.points.len() >= capacity {
            self.points.pop_front();
        }
        self.points.push_back(point);
    }
}

/// One series' storage: both tier rings plus the pending downsample
/// accumulator (values since the last downsampled point).
#[derive(Debug, Default)]
struct PerSeries {
    raw: Ring,
    ds: Ring,
    pending: Vec<f64>,
}

/// The observatory's series map: two bounded rings per series name.
#[derive(Debug)]
pub struct SeriesStore {
    raw_capacity: usize,
    ds_capacity: usize,
    ds_factor: usize,
    series: BTreeMap<String, PerSeries>,
}

impl SeriesStore {
    /// An empty store. `ds_factor` raw pushes aggregate into one
    /// downsampled point (means); a factor of 0 is treated as 1.
    pub fn new(raw_capacity: usize, ds_capacity: usize, ds_factor: usize) -> Self {
        SeriesStore {
            raw_capacity,
            ds_capacity,
            ds_factor: ds_factor.max(1),
            series: BTreeMap::new(),
        }
    }

    /// Raw pushes per downsampled point.
    pub fn ds_factor(&self) -> usize {
        self.ds_factor
    }

    /// Appends one point to a series' raw ring, rolling the downsample
    /// accumulator into the downsampled ring when it fills.
    pub fn push(&mut self, name: &str, ts_us: u64, value: f64) {
        let per = self.series.entry(name.to_string()).or_default();
        per.raw
            .push(self.raw_capacity, SeriesPoint { ts_us, value });
        per.pending.push(value);
        if per.pending.len() >= self.ds_factor {
            let mean = per.pending.iter().sum::<f64>() / per.pending.len() as f64;
            per.pending.clear();
            per.ds
                .push(self.ds_capacity, SeriesPoint { ts_us, value: mean });
        }
    }

    /// All series names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// A series' retained points at a tier, oldest first. `None` when the
    /// series has never been pushed.
    pub fn history(&self, name: &str, tier: Tier) -> Option<Vec<SeriesPoint>> {
        let per = self.series.get(name)?;
        let ring = match tier {
            Tier::Raw => &per.raw,
            Tier::Downsampled => &per.ds,
        };
        Some(ring.points.iter().copied().collect())
    }

    /// The most recent raw point of a series, if any.
    pub fn latest(&self, name: &str) -> Option<SeriesPoint> {
        self.series.get(name)?.raw.points.back().copied()
    }

    /// The last `window` raw points of a series (fewer when the ring holds
    /// fewer), oldest first.
    pub fn tail(&self, name: &str, window: usize) -> Vec<SeriesPoint> {
        match self.series.get(name) {
            Some(per) => {
                let pts = &per.raw.points;
                let skip = pts.len().saturating_sub(window);
                pts.iter().skip(skip).copied().collect()
            }
            None => Vec::new(),
        }
    }
}

/// Least-squares slope of `value` against time, in value units per
/// *second* (timestamps are microseconds). Returns 0.0 for fewer than two
/// points or a degenerate (zero time spread) window — "no trend" is the
/// safe reading for an alert threshold in both cases.
pub fn slope_per_second(points: &[SeriesPoint]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    // Center timestamps on the window's first point to keep the sums
    // well-conditioned even with large microsecond epochs.
    let t0 = points[0].ts_us;
    let xs = points
        .iter()
        .map(|p| (p.ts_us - t0) as f64 / 1_000_000.0)
        .collect::<Vec<_>>();
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.value).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (x, p) in xs.iter().zip(points.iter()) {
        cov += (x - mean_x) * (p.value - mean_y);
        var += (x - mean_x) * (x - mean_x);
    }
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ts_us: u64, value: f64) -> SeriesPoint {
        SeriesPoint { ts_us, value }
    }

    #[test]
    fn raw_ring_retains_exactly_its_capacity() {
        let mut s = SeriesStore::new(4, 8, 2);
        for i in 0..10u64 {
            s.push("x", i * 1_000, i as f64);
        }
        let h = s.history("x", Tier::Raw).expect("series exists");
        assert_eq!(h.len(), 4, "raw tier holds exactly raw_capacity points");
        // Oldest-first contiguous suffix: ticks 6..=9.
        assert_eq!(
            h.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![6.0, 7.0, 8.0, 9.0]
        );
        assert_eq!(h[0].ts_us, 6_000);
        assert_eq!(s.latest("x"), Some(pt(9_000, 9.0)));
    }

    #[test]
    fn downsampled_ring_retains_exactly_its_capacity() {
        // factor 2 → one ds point per two pushes; capacity 3 → last 3 means.
        let mut s = SeriesStore::new(100, 3, 2);
        for i in 0..10u64 {
            s.push("x", i, i as f64);
        }
        let h = s.history("x", Tier::Downsampled).expect("series exists");
        assert_eq!(h.len(), 3, "ds tier holds exactly ds_capacity points");
        // 10 pushes → 5 ds means (0.5, 2.5, 4.5, 6.5, 8.5); last 3 kept.
        assert_eq!(
            h.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![4.5, 6.5, 8.5]
        );
    }

    #[test]
    fn downsample_points_align_to_the_last_contributing_raw_tick() {
        let mut s = SeriesStore::new(100, 100, 3);
        for i in 0..7u64 {
            s.push("x", 2_000_000 * (i + 1), (i + 1) as f64);
        }
        let ds = s.history("x", Tier::Downsampled).expect("series exists");
        // Two full groups of 3 (ticks 1-3 and 4-6); tick 7 still pending.
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0], pt(6_000_000, 2.0)); // mean(1,2,3) stamped at tick 3
        assert_eq!(ds[1], pt(12_000_000, 5.0)); // mean(4,5,6) stamped at tick 6
                                                // The pending value joins the next group, not a partial one.
        s.push("x", 16_000_000, 8.0);
        s.push("x", 18_000_000, 9.0);
        let ds = s.history("x", Tier::Downsampled).expect("series exists");
        assert_eq!(ds[2], pt(18_000_000, 8.0)); // mean(7,8,9)
    }

    #[test]
    fn unknown_series_has_no_history() {
        let s = SeriesStore::new(4, 4, 2);
        assert!(s.history("nope", Tier::Raw).is_none());
        assert!(s.history("nope", Tier::Downsampled).is_none());
        assert!(s.latest("nope").is_none());
        assert!(s.tail("nope", 5).is_empty());
        assert!(s.names().is_empty());
    }

    #[test]
    fn tail_returns_the_last_window_points_oldest_first() {
        let mut s = SeriesStore::new(10, 10, 100);
        for i in 0..6u64 {
            s.push("x", i, i as f64);
        }
        let t = s.tail("x", 3);
        assert_eq!(
            t.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![3.0, 4.0, 5.0]
        );
        assert_eq!(s.tail("x", 100).len(), 6);
    }

    #[test]
    fn slope_recovers_a_linear_trend_in_units_per_second() {
        // value rises 5 units per 1_000_000 us → slope 5.0 / s.
        let pts: Vec<SeriesPoint> = (0..10)
            .map(|i| pt(7_000_000 + i * 1_000_000, 100.0 + 5.0 * i as f64))
            .collect();
        assert!((slope_per_second(&pts) - 5.0).abs() < 1e-9);
        // Falling trend is negative.
        let pts: Vec<SeriesPoint> = (0..10)
            .map(|i| pt(i * 2_000_000, 100.0 - 3.0 * i as f64))
            .collect();
        assert!((slope_per_second(&pts) + 1.5).abs() < 1e-9);
        // Degenerate windows read as flat.
        assert_eq!(slope_per_second(&[]), 0.0);
        assert_eq!(slope_per_second(&[pt(0, 1.0)]), 0.0);
        assert_eq!(slope_per_second(&[pt(5, 1.0), pt(5, 9.0)]), 0.0);
        let flat: Vec<SeriesPoint> = (0..5).map(|i| pt(i * 1_000_000, 42.0)).collect();
        assert_eq!(slope_per_second(&flat), 0.0);
    }
}
