//! The end-to-end allocation pipeline of Figure 1: build → coalesce →
//! order → assign → (reconstruct ∘ spill)* → shuffle/save-restore code.
//!
//! Every entry point returns `Result<_, `[`AllocError`]`>`. The
//! per-function allocators ([`allocate_function`]) are *strict*: any
//! internal inconsistency or a spill loop that fails to converge within
//! [`AllocatorConfig::max_spill_rounds`] surfaces as a typed error. The
//! program-level drivers ([`allocate_program`]) are *resilient*: a function
//! whose allocation fails falls back to [`degraded_allocation`] — spill
//! everything, then color the tiny residue — which is always constructible
//! on any sane register file, and the failure is reported through the
//! telemetry sink as a `degraded` event instead of aborting the build.

use std::collections::HashMap;

use ccra_analysis::{FrequencyInfo, FuncFreq};
use ccra_ir::{BlockId, FuncId, Function, Program, RegClass, VReg};
use ccra_machine::{CostModel, PhysReg, RegisterFile, SaveKind};

use crate::build::{build_context_traced, FuncContext};
use crate::cbh::allocate_bank_cbh_traced;
use crate::chaitin::{allocate_bank_chaitin_traced, BankResult};
use crate::error::AllocError;
use crate::metrics::MetricsRegistry;
use crate::priority::allocate_bank_priority_traced;
use crate::rewrite::{insert_overhead_markers, FinalAssignment, MarkerRewrite};
use crate::trace::{
    span_start, AllocEvent, AllocSink, DegradedInfo, FuncSummary, NoopSink, Phase, ProgramSummary,
    RoundStats, TraceCtx,
};
use crate::types::{AllocatorConfig, AllocatorKind, Loc, Overhead};

/// Per-reference register claims of one allocation: the physical register
/// holding each def and use of every colored live range, keyed by its
/// `(block, instruction index, vreg, is_def)` site in the **final rewritten
/// body** (spill code and overhead markers included; terminator references
/// carry `idx == insts.len()`). The `is_def` flag disambiguates an
/// instruction that defs and uses the same vreg — those references belong
/// to two different webs, which may be in different registers. The
/// independent checker ([`crate::check`]) joins these claims by webs it
/// recomputes itself.
pub type RefAssignment = HashMap<(BlockId, u32, VReg, bool), PhysReg>;

/// A summary of one colored live range, for inspection and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeSummary {
    /// The register bank.
    pub class: RegClass,
    /// Weighted spill cost at the final round.
    pub spill_cost: f64,
    /// Weighted caller-save cost.
    pub caller_cost: f64,
    /// Weighted callee-save cost.
    pub callee_cost: f64,
    /// Whether the range crosses any call.
    pub crosses_calls: bool,
    /// Where it ended up.
    pub loc: Loc,
}

/// The result of allocating one function. The rewritten function itself is
/// returned alongside (by [`allocate_function`]) or moved into the
/// rewritten [`Program`] (by [`allocate_program`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncAllocation {
    /// The weighted overhead (Section 3 cost) of this function.
    pub overhead: Overhead,
    /// Build→color→spill rounds executed (1 = no spilling needed).
    pub rounds: u32,
    /// Live ranges spilled across all rounds.
    pub spilled_ranges: usize,
    /// Distinct callee-save registers used.
    pub callee_regs_used: usize,
    /// Final-round live ranges with their locations (spill temporaries from
    /// earlier rounds included).
    pub ranges: Vec<RangeSummary>,
    /// The final per-reference register claims (see [`RefAssignment`]).
    pub assignment: RefAssignment,
    /// Whether this allocation came from the [`degraded_allocation`]
    /// fallback rather than the configured allocator.
    pub degraded: bool,
}

/// The result of allocating a whole program.
///
/// # Ordering invariant
///
/// Function ordering is explicit and stable: [`Program`] assigns dense,
/// insertion-ordered [`FuncId`]s, the rewritten program reuses the input
/// program's ids unchanged, and `per_func[id.index()]` is the result for
/// the function `id` names in **both** programs. Every program-level
/// driver — serial ([`allocate_program`]) and parallel
/// ([`crate::driver::ParallelDriver`]) — upholds this, which is what makes
/// the parallel merge's byte-identical-to-serial guarantee testable.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramAllocation {
    /// The rewritten program (every function allocated, ids preserved).
    pub program: Program,
    /// Per-function results, indexed by function id.
    pub per_func: Vec<FuncAllocation>,
    /// Whole-program weighted overhead.
    pub overhead: Overhead,
}

impl ProgramAllocation {
    /// The result for one function.
    pub fn func(&self, id: FuncId) -> &FuncAllocation {
        &self.per_func[id.index()]
    }
}

fn allocate_banks_traced(
    ctx: &FuncContext,
    file: &RegisterFile,
    config: &AllocatorConfig,
    tr: &mut TraceCtx<'_>,
) -> Result<BankResult, AllocError> {
    let mut merged = BankResult::default();
    for class in RegClass::ALL {
        let res = match config.kind {
            AllocatorKind::Chaitin | AllocatorKind::Optimistic => {
                allocate_bank_chaitin_traced(ctx, class, file, config, tr)?
            }
            AllocatorKind::Priority(ordering) => {
                allocate_bank_priority_traced(ctx, class, file, ordering, tr)?
            }
            AllocatorKind::Cbh => allocate_bank_cbh_traced(ctx, class, file, tr)?,
        };
        merged.colors.extend(res.colors);
        merged.spilled.extend(res.spilled);
    }
    Ok(merged)
}

/// Collects the per-reference register claims of the final coloring,
/// remapped through the marker rewrite onto the final instruction stream.
fn claim_refs(
    body: &Function,
    ctx: &FuncContext,
    colors: &HashMap<u32, PhysReg>,
    rw: &MarkerRewrite,
) -> RefAssignment {
    let mut refs = RefAssignment::new();
    for (n, node) in ctx.nodes.iter().enumerate() {
        let Some(&reg) = colors.get(&(n as u32)) else {
            continue;
        };
        for (refs_of_kind, is_def) in [(&node.defs, true), (&node.uses, false)] {
            for &(bb, idx, v) in refs_of_kind {
                let term_idx = body.block(bb).insts.len() as u32;
                refs.insert((bb, rw.remap(bb, idx, term_idx), v, is_def), reg);
            }
        }
    }
    refs
}

/// Allocates registers for one function, iterating spill rounds until no
/// live range needs to be spilled, then inserting overhead markers.
///
/// Returns the rewritten function (spill code plus overhead markers) and
/// the allocation summary.
///
/// # Errors
///
/// Returns [`AllocError::SpillRoundsExceeded`] if the allocation does not
/// converge within [`AllocatorConfig::max_spill_rounds`] rounds (a register
/// file too small for the instruction shapes — impossible at the MIPS
/// calling-convention minimum), and propagates any internal-consistency
/// error from the phases. The program-level [`allocate_program`] recovers
/// from all of these via [`degraded_allocation`].
pub fn allocate_function(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
) -> Result<(Function, FuncAllocation), AllocError> {
    let mut sink = NoopSink;
    allocate_function_traced(f, freq, file, config, cost, &mut sink)
}

/// Like [`allocate_function`], emitting telemetry through `sink`: phase
/// spans and round stats per spill round, one decision record per live
/// range, spill-insertion stats, and a final [`FuncSummary`].
pub fn allocate_function_traced(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
) -> Result<(Function, FuncAllocation), AllocError> {
    allocate_function_instrumented(
        f,
        freq,
        file,
        config,
        cost,
        sink,
        &mut MetricsRegistry::disabled(),
    )
}

/// Like [`allocate_function_traced`], additionally aggregating counters,
/// sizes, and per-phase wall-clock histograms into `metrics` (see
/// [`crate::metrics`]). Either layer can be off independently: a
/// [`NoopSink`] with an enabled registry profiles without the event
/// stream's serialization cost.
pub fn allocate_function_instrumented(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
    metrics: &mut MetricsRegistry,
) -> Result<(Function, FuncAllocation), AllocError> {
    let timer = metrics.timer();
    let result = allocate_function_impl(f, freq, file, config, cost, sink, metrics);
    if let Ok((_, alloc)) = &result {
        metrics.inc("alloc_functions_total");
        metrics.observe_elapsed("func_alloc_micros", timer);
        metrics.observe("func_rounds", alloc.rounds as u64);
        metrics.observe("func_spilled_ranges", alloc.spilled_ranges as u64);
        metrics.observe("func_callee_regs_used", alloc.callee_regs_used as u64);
    }
    result
}

/// Records the dominant resident structures of one built [`FuncContext`]
/// into the thread's memory-profiling tally (no-op unless
/// [`crate::quality::memprof_start`] armed it): the node array plus both
/// directions of the adjacency lists.
fn memprof_context(phase: Phase, ctx: &FuncContext) {
    crate::quality::memprof_record(
        phase,
        (ctx.nodes.len() * std::mem::size_of::<crate::node::NodeInfo>()
            + ctx.graph.num_edges() * 2 * std::mem::size_of::<u32>()) as u64,
    );
}

/// Records one rewritten body's resident instruction stream under
/// `phase` (same gating as [`memprof_context`]).
fn memprof_body(phase: Phase, body: &Function) {
    crate::quality::memprof_record(
        phase,
        (body.num_insts() * std::mem::size_of::<ccra_ir::Inst>()) as u64,
    );
}

fn allocate_function_impl(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
    metrics: &mut MetricsRegistry,
) -> Result<(Function, FuncAllocation), AllocError> {
    let name = f.name().to_string();
    let mut body = f.clone();
    let mut spilled_ranges = 0usize;
    let mut rounds = 0u32;
    let mut ctx = {
        let mut tr = TraceCtx::with_metrics(sink, metrics, &name, 1);
        build_context_traced(&body, freq, cost, &mut tr)?
    };
    memprof_context(Phase::Build, &ctx);
    loop {
        rounds += 1;
        metrics.inc("alloc_rounds_total");
        let mut tr = TraceCtx::with_metrics(sink, metrics, &name, rounds);
        if tr.enabled() || tr.metrics_enabled() {
            let max_degree = (0..ctx.nodes.len() as u32)
                .map(|n| ctx.graph.degree(n))
                .max()
                .unwrap_or(0);
            tr.observe("graph_nodes", ctx.nodes.len() as u64);
            tr.observe("graph_edges", ctx.graph.num_edges() as u64);
            tr.observe("graph_max_degree", max_degree as u64);
            if let Some(m) = tr.metrics() {
                m.gauge_max("graph_nodes_peak", ctx.nodes.len() as f64);
                m.gauge_max("graph_max_degree_peak", max_degree as f64);
            }
            if tr.enabled() {
                tr.emit(AllocEvent::Round(RoundStats {
                    func: name.clone(),
                    round: rounds,
                    nodes: ctx.nodes.len(),
                    edges: ctx.graph.num_edges(),
                    max_degree,
                }));
            }
        }
        let result = allocate_banks_traced(&ctx, file, config, &mut tr)?;
        if result.spilled.is_empty() {
            let assignment = FinalAssignment {
                colors: result.colors.clone(),
            };
            let callee_regs_used = assignment.callee_regs_used().len();
            let span = tr.span();
            let marker_rw = insert_overhead_markers(&mut body, &ctx, &assignment);
            let refs = claim_refs(&body, &ctx, &result.colors, &marker_rw);
            tr.span_end(span, Phase::Rewrite);
            memprof_body(Phase::Rewrite, &body);
            let overhead = crate::accounting::weighted_overhead(&body, freq);
            let ranges = summarize(&ctx, &result.colors);
            if tr.enabled() {
                tr.emit(AllocEvent::Func(FuncSummary {
                    func: name.clone(),
                    rounds,
                    spilled_ranges,
                    callee_regs_used,
                    spill: overhead.spill,
                    caller_save: overhead.caller_save,
                    callee_save: overhead.callee_save,
                    shuffle: overhead.shuffle,
                }));
            }
            let alloc = FuncAllocation {
                overhead,
                rounds,
                spilled_ranges,
                callee_regs_used,
                ranges,
                assignment: refs,
                degraded: false,
            };
            return Ok((body, alloc));
        }
        if rounds >= config.max_spill_rounds {
            return Err(AllocError::SpillRoundsExceeded {
                func: name,
                rounds,
                remaining_uncolored: result.spilled.len(),
            });
        }
        spilled_ranges += result.spilled.len();
        let rewrite = crate::spill::insert_spill_code_instrumented(
            &mut body,
            &ctx,
            &result.spilled,
            &mut tr,
        )?;
        memprof_body(Phase::SpillInsert, &body);
        ctx = if config.incremental_reconstruction {
            let next = crate::reconstruct::reconstruct_context_traced(
                &ctx,
                &rewrite,
                &result.spilled,
                &body,
                &mut tr,
            );
            memprof_context(Phase::Reconstruct, &next);
            next
        } else {
            let mut tr = TraceCtx::with_metrics(sink, metrics, &name, rounds + 1);
            let next = build_context_traced(&body, freq, cost, &mut tr)?;
            memprof_context(Phase::Build, &next);
            next
        };
    }
}

/// The spill-everything fallback: always constructible, always
/// checker-clean, never cost-directed.
///
/// Round one spills **every** live range; round two colors the residue —
/// parameter webs and single-instruction spill temporaries — with the base
/// allocator, which colors tiny ranges on any register file meeting the
/// calling-convention minimum. Used by [`allocate_program`] when the
/// configured allocator returns an error.
///
/// # Errors
///
/// Returns [`AllocError::DegradedAllocationFailed`] if even the residue
/// cannot be colored (a register file below the ABI minimum for the
/// instruction shapes), and propagates context-construction errors.
pub fn degraded_allocation(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
) -> Result<(Function, FuncAllocation), AllocError> {
    degraded_allocation_instrumented(f, freq, file, cost, sink, &mut MetricsRegistry::disabled())
}

/// Like [`degraded_allocation`], aggregating into `metrics` (counted under
/// `alloc_degraded_total` rather than `alloc_functions_total`).
pub fn degraded_allocation_instrumented(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
    metrics: &mut MetricsRegistry,
) -> Result<(Function, FuncAllocation), AllocError> {
    let name = f.name().to_string();
    let mut body = f.clone();

    // Round 1: spill every live range.
    let spilled_ranges;
    {
        let mut tr = TraceCtx::with_metrics(sink, metrics, &name, 1);
        let ctx = build_context_traced(&body, freq, cost, &mut tr)?;
        memprof_context(Phase::Build, &ctx);
        let all: Vec<u32> = (0..ctx.nodes.len() as u32).collect();
        spilled_ranges = all.len();
        crate::spill::insert_spill_code_instrumented(&mut body, &ctx, &all, &mut tr)?;
        memprof_body(Phase::SpillInsert, &body);
    }

    // Round 2: color the residue (parameter webs and spill temporaries,
    // all spanning a single instruction) with the base allocator, which
    // never spills a range that fits a register.
    let config = AllocatorConfig::base();
    let mut tr = TraceCtx::with_metrics(sink, metrics, &name, 2);
    let ctx = build_context_traced(&body, freq, cost, &mut tr)?;
    let result = allocate_banks_traced(&ctx, file, &config, &mut tr)?;
    if !result.spilled.is_empty() {
        return Err(AllocError::DegradedAllocationFailed {
            func: name,
            remaining_uncolored: result.spilled.len(),
        });
    }

    let assignment = FinalAssignment {
        colors: result.colors.clone(),
    };
    let callee_regs_used = assignment.callee_regs_used().len();
    let span = tr.span();
    let marker_rw = insert_overhead_markers(&mut body, &ctx, &assignment);
    let refs = claim_refs(&body, &ctx, &result.colors, &marker_rw);
    tr.span_end(span, Phase::Rewrite);
    memprof_body(Phase::Rewrite, &body);
    let overhead = crate::accounting::weighted_overhead(&body, freq);
    let ranges = summarize(&ctx, &result.colors);
    if tr.enabled() {
        tr.emit(AllocEvent::Func(FuncSummary {
            func: name.clone(),
            rounds: 2,
            spilled_ranges,
            callee_regs_used,
            spill: overhead.spill,
            caller_save: overhead.caller_save,
            callee_save: overhead.callee_save,
            shuffle: overhead.shuffle,
        }));
    }
    metrics.inc("alloc_degraded_total");
    metrics.observe("func_rounds", 2);
    metrics.observe("func_spilled_ranges", spilled_ranges as u64);
    Ok((
        body,
        FuncAllocation {
            overhead,
            rounds: 2,
            spilled_ranges,
            callee_regs_used,
            ranges,
            assignment: refs,
            degraded: true,
        },
    ))
}

fn summarize(ctx: &FuncContext, colors: &HashMap<u32, PhysReg>) -> Vec<RangeSummary> {
    ctx.nodes
        .iter()
        .enumerate()
        .map(|(n, node)| RangeSummary {
            class: node.class,
            spill_cost: node.spill_cost,
            caller_cost: node.caller_cost,
            callee_cost: node.callee_cost,
            crosses_calls: node.crosses_calls(),
            loc: match colors.get(&(n as u32)) {
                Some(&r) => Loc::Reg(r),
                None => Loc::Spilled,
            },
        })
        .collect()
}

/// Allocates registers for every function of a program.
///
/// Register allocation is intra-procedural, exactly as in the paper: each
/// function is colored independently; the frequencies supply the
/// inter-procedural weights (invocation counts drive callee-save cost).
///
/// Functions are processed and reported **in function-id order** — see the
/// ordering invariant on [`ProgramAllocation`].
///
/// # Errors
///
/// A function whose allocation fails falls back to
/// [`degraded_allocation`]; only a failure of the fallback itself (a
/// register file below the ABI minimum) surfaces as an error.
pub fn allocate_program(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
) -> Result<ProgramAllocation, AllocError> {
    allocate_program_with(program, freq, file, config, &CostModel::paper())
}

/// Like [`allocate_program`] with an explicit cost model.
pub fn allocate_program_with(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
) -> Result<ProgramAllocation, AllocError> {
    let mut sink = NoopSink;
    allocate_program_with_traced(program, freq, file, config, cost, &mut sink)
}

/// Like [`allocate_program`], emitting telemetry through `sink`.
///
/// Uses the paper's cost model; see [`allocate_program_with_traced`] for an
/// explicit one.
pub fn allocate_program_traced(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    sink: &mut dyn AllocSink,
) -> Result<ProgramAllocation, AllocError> {
    allocate_program_with_traced(program, freq, file, config, &CostModel::paper(), sink)
}

/// Like [`allocate_program_with`], emitting telemetry through `sink`: the
/// full per-function event stream of [`allocate_function_traced`] plus a
/// closing [`ProgramSummary`] carrying the whole-program overhead and the
/// total allocation wall-clock time. A function that falls back to
/// [`degraded_allocation`] additionally emits a `degraded` event naming
/// the error that triggered the fallback.
pub fn allocate_program_with_traced(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
) -> Result<ProgramAllocation, AllocError> {
    allocate_program_instrumented(
        program,
        freq,
        file,
        config,
        cost,
        sink,
        &mut MetricsRegistry::disabled(),
    )
}

/// Like [`allocate_program_with_traced`], additionally aggregating the
/// whole run into `metrics`: every counter and histogram of
/// [`allocate_function_instrumented`] across all functions, plus
/// `alloc_programs_total` and the `program_alloc_micros` histogram. This
/// is the entry point the `ccra-eval` `perf` harness drives with a
/// [`NoopSink`] — aggregate profiling without per-event serialization.
pub fn allocate_program_instrumented(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
    metrics: &mut MetricsRegistry,
) -> Result<ProgramAllocation, AllocError> {
    let start = span_start(sink);
    let prog_timer = metrics.timer();
    let mut rewritten = Program::new();
    let mut per_func = Vec::with_capacity(program.num_functions());
    let mut overhead = Overhead::zero();
    for (id, f) in program.functions() {
        let strict =
            allocate_function_instrumented(f, freq.func(id), &file, config, cost, sink, metrics);
        let (body, alloc) = match strict {
            Ok(done) => done,
            Err(err) => {
                if sink.enabled() {
                    sink.emit(AllocEvent::Degraded(DegradedInfo {
                        func: f.name().to_string(),
                        reason: err.to_string(),
                    }));
                }
                degraded_allocation_instrumented(f, freq.func(id), &file, cost, sink, metrics)?
            }
        };
        overhead += alloc.overhead;
        rewritten.add_function(body);
        per_func.push(alloc);
    }
    if let Some(main) = program.main() {
        rewritten.set_main(main);
    }
    metrics.inc("alloc_programs_total");
    metrics.observe_elapsed("program_alloc_micros", prog_timer);
    if let Some(t) = start {
        sink.emit(AllocEvent::Program(ProgramSummary {
            config: config.label(),
            funcs: per_func.len(),
            spill: overhead.spill,
            caller_save: overhead.caller_save,
            callee_save: overhead.callee_save,
            shuffle: overhead.shuffle,
            micros: t.elapsed().as_micros() as u64,
        }));
    }
    Ok(ProgramAllocation {
        program: rewritten,
        per_func,
        overhead,
    })
}

/// Counts how many caller-save registers of each bank the final coloring
/// uses (for diagnostics).
pub fn count_kinds(alloc: &FuncAllocation) -> (usize, usize) {
    let mut caller = std::collections::HashSet::new();
    let mut callee = std::collections::HashSet::new();
    for r in alloc.ranges.iter().filter_map(|s| s.loc.reg()) {
        match r.kind {
            SaveKind::CallerSave => caller.insert(r),
            SaveKind::CalleeSave => callee.insert(r),
        };
    }
    (caller.len(), callee.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RecordingSink;
    use ccra_analysis::{InterpConfig, Value};
    use ccra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, RegClass};

    /// A loop summing k live values, with a call inside.
    fn workload(k: usize, trips: i64) -> Program {
        let mut b = FunctionBuilder::new("main");
        let vs: Vec<_> = (0..k).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in vs.iter().enumerate() {
            b.iconst(v, j as i64 + 1);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, trips);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        p
    }

    #[test]
    fn allocation_preserves_semantics_under_all_allocators() {
        let p = workload(9, 13);
        let expect = ccra_analysis::run(&p, &InterpConfig::default())
            .expect("program runs")
            .result;
        assert_eq!(expect, Some(Value::Int(9 * 10 / 2 * 13)));
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let file = RegisterFile::new(6, 4, 1, 0); // tight: forces spills
        for config in [
            AllocatorConfig::base(),
            AllocatorConfig::improved(),
            AllocatorConfig::optimistic(),
            AllocatorConfig::improved_optimistic(),
            AllocatorConfig::priority(crate::PriorityOrdering::Sorting),
            AllocatorConfig::cbh(),
        ] {
            let out = allocate_program(&p, &freq, file, &config).expect("allocation succeeds");
            out.program.verify().expect("rewritten program verifies");
            let stats =
                ccra_analysis::run(&out.program, &InterpConfig::default()).expect("program runs");
            assert_eq!(stats.result, expect, "{config:?} changed semantics");
        }
    }

    #[test]
    fn measured_overhead_matches_weighted_overhead() {
        let p = workload(10, 17);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let file = RegisterFile::new(6, 4, 2, 0);
        for config in [AllocatorConfig::base(), AllocatorConfig::improved()] {
            let out = allocate_program(&p, &freq, file, &config).expect("allocation succeeds");
            let stats =
                ccra_analysis::run(&out.program, &InterpConfig::default()).expect("program runs");
            let measured = crate::accounting::measured_overhead(&stats);
            let analytic = out.overhead;
            for (m, a) in [
                (measured.spill, analytic.spill),
                (measured.caller_save, analytic.caller_save),
                (measured.callee_save, analytic.callee_save),
                (measured.shuffle, analytic.shuffle),
            ] {
                assert!(
                    (m - a).abs() < 1e-6,
                    "{config:?}: measured {measured:?} != analytic {analytic:?}"
                );
            }
        }
    }

    #[test]
    fn improved_beats_base_on_call_heavy_code() {
        // Values with low reference counts crossing a hot call: the base
        // allocator parks them in callee-save registers of a function
        // invoked once — harmless here — but given MANY registers it puts
        // cold call-crossing values into registers whose caller-save cost
        // exceeds their spill cost. Construct the classic case: cold values
        // crossing a hot call.
        let mut b = FunctionBuilder::new("main");
        let cold: Vec<_> = (0..4).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in cold.iter().enumerate() {
            b.iconst(v, j as i64);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 100);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        // The cold values are used once, after the loop.
        let mut acc = i;
        for &v in &cold {
            let t = b.new_vreg(RegClass::Int);
            b.binary(BinOp::Add, t, acc, v);
            acc = t;
        }
        b.ret(Some(acc));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        // Caller-save registers only: the base allocator must keep the cold
        // values (which cross 100 call executions) in caller-save registers
        // at 200 ops each; improved spills them at 2 ops each.
        let file = RegisterFile::new(12, 4, 0, 0);
        let base =
            allocate_program(&p, &freq, file, &AllocatorConfig::base()).expect("base allocates");
        let improved = allocate_program(&p, &freq, file, &AllocatorConfig::improved())
            .expect("improved allocates");
        assert!(
            improved.overhead.total() * 1.5 < base.overhead.total(),
            "improved {} vs base {}",
            improved.overhead.total(),
            base.overhead.total()
        );
        // The improvement comes from trading caller-save cost for spills.
        assert!(improved.overhead.caller_save < base.overhead.caller_save);
    }

    #[test]
    fn count_kinds_reports_distinct_registers() {
        let p = workload(6, 5);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let out = allocate_program(
            &p,
            &freq,
            RegisterFile::new(8, 6, 3, 2),
            &AllocatorConfig::base(),
        )
        .expect("allocation succeeds");
        let fa = out.func(p.main().expect("main set"));
        let (caller, callee) = count_kinds(fa);
        assert!(caller + callee > 0, "something must be in registers");
        assert_eq!(callee, fa.callee_regs_used);
        assert!(caller <= 8 + 6 && callee <= 3 + 2);
    }

    #[test]
    fn rounds_and_spills_reported() {
        let p = workload(12, 5);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let file = RegisterFile::new(6, 4, 0, 0);
        let out =
            allocate_program(&p, &freq, file, &AllocatorConfig::base()).expect("base allocates");
        let fa = out.func(p.main().expect("main set"));
        assert!(fa.rounds >= 2, "spilling requires another round");
        assert!(fa.spilled_ranges > 0);
        assert!(fa.overhead.spill > 0.0);
        assert!(!fa.degraded);
    }

    #[test]
    fn incremental_reconstruction_preserves_semantics_and_quality() {
        let p = workload(12, 9);
        let expect = ccra_analysis::run(&p, &InterpConfig::default())
            .expect("program runs")
            .result;
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        for file in [RegisterFile::new(6, 4, 0, 0), RegisterFile::new(8, 6, 2, 2)] {
            for base_config in [AllocatorConfig::base(), AllocatorConfig::improved()] {
                let rebuilt =
                    allocate_program(&p, &freq, file, &base_config).expect("rebuild allocates");
                let recon = allocate_program(&p, &freq, file, &base_config.with_reconstruction())
                    .expect("reconstruction allocates");
                recon.program.verify().expect("rewritten program verifies");
                let got = ccra_analysis::run(&recon.program, &InterpConfig::default())
                    .expect("program runs")
                    .result;
                assert_eq!(got, expect, "reconstruction changed semantics");
                // The conservative graph may cost somewhat more, never an
                // order of magnitude.
                assert!(
                    recon.overhead.total() <= rebuilt.overhead.total() * 2.0 + 8.0,
                    "reconstruction {} vs rebuild {}",
                    recon.overhead.total(),
                    rebuilt.overhead.total()
                );
            }
        }
    }

    #[test]
    fn ample_registers_mean_zero_spill_cost_for_base() {
        // The *base* allocator colors everything when registers abound.
        // The improved allocator may still choose to spill (storage-class
        // analysis spills when memory is cheaper than any register) but
        // must never end up with a higher total.
        let p = workload(8, 10);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let base = allocate_program(
            &p,
            &freq,
            RegisterFile::mips_full(),
            &AllocatorConfig::base(),
        )
        .expect("base allocates");
        assert_eq!(base.overhead.spill, 0.0);
        assert_eq!(base.func(p.main().expect("main set")).rounds, 1);
        let improved = allocate_program(
            &p,
            &freq,
            RegisterFile::mips_full(),
            &AllocatorConfig::improved(),
        )
        .expect("improved allocates");
        assert!(improved.overhead.total() <= base.overhead.total());
    }

    #[test]
    fn spill_round_cap_returns_typed_error() {
        let p = workload(12, 5);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let file = RegisterFile::new(6, 4, 0, 0); // tight: round 1 spills
        let config = AllocatorConfig::base().with_max_spill_rounds(1);
        let id = p.main().expect("main set");
        let err = allocate_function(
            p.function(id),
            freq.func(id),
            &file,
            &config,
            &ccra_machine::CostModel::paper(),
        )
        .expect_err("one round cannot converge");
        match err {
            AllocError::SpillRoundsExceeded {
                func,
                rounds,
                remaining_uncolored,
            } => {
                assert_eq!(func, "main");
                assert_eq!(rounds, 1);
                assert!(remaining_uncolored > 0);
            }
            other => unreachable!("expected SpillRoundsExceeded, got {other:?}"),
        }
    }

    #[test]
    fn program_allocation_degrades_instead_of_failing() {
        let p = workload(12, 5);
        let expect = ccra_analysis::run(&p, &InterpConfig::default())
            .expect("program runs")
            .result;
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let file = RegisterFile::new(6, 4, 0, 0);
        let config = AllocatorConfig::base().with_max_spill_rounds(1);
        let mut sink = RecordingSink::new();
        let out = allocate_program_traced(&p, &freq, file, &config, &mut sink)
            .expect("the degraded fallback absorbs the round-cap failure");
        let fa = out.func(p.main().expect("main set"));
        assert!(fa.degraded, "the fallback must report itself");
        assert!(
            sink.events
                .iter()
                .any(|e| matches!(e, AllocEvent::Degraded(d) if d.func == "main")),
            "a degraded event names the function"
        );
        out.program.verify().expect("rewritten program verifies");
        let got = ccra_analysis::run(&out.program, &InterpConfig::default())
            .expect("program runs")
            .result;
        assert_eq!(got, expect, "the degraded allocation changed semantics");
    }

    #[test]
    fn function_ordering_is_a_stable_invariant() {
        // The documented invariant the parallel merge tests against: the
        // rewritten program carries the same functions under the same ids
        // in the same order, and per_func is indexed by id.
        let mut p = Program::new();
        let mut ids = Vec::new();
        for name in ["zeta", "alpha", "mid"] {
            let mut b = FunctionBuilder::new(name);
            let x = b.new_vreg(RegClass::Int);
            b.iconst(x, 1);
            b.ret(Some(x));
            ids.push(p.add_function(b.finish()));
        }
        p.set_main(ids[2]);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let out = allocate_program(
            &p,
            &freq,
            RegisterFile::mips_full(),
            &AllocatorConfig::improved(),
        )
        .expect("allocation succeeds");
        assert_eq!(out.per_func.len(), 3);
        assert_eq!(out.program.main(), p.main());
        let names: Vec<&str> = out.program.functions().map(|(_, f)| f.name()).collect();
        assert_eq!(
            names,
            ["zeta", "alpha", "mid"],
            "insertion order, not name order"
        );
        for &id in &ids {
            assert_eq!(out.program.function(id).name(), p.function(id).name());
            // per_func is reachable by the same id.
            let _ = &out.per_func[id.index()];
        }
    }

    #[test]
    fn assignment_claims_cover_register_references() {
        let p = workload(5, 7);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let out = allocate_program(
            &p,
            &freq,
            RegisterFile::mips_full(),
            &AllocatorConfig::improved(),
        )
        .expect("allocation succeeds");
        let id = p.main().expect("main set");
        let fa = out.func(id);
        assert!(!fa.assignment.is_empty());
        // Every claim addresses a real reference in the rewritten body.
        let f = out.program.function(id);
        for &(bb, idx, v, is_def) in fa.assignment.keys() {
            let insts = &f.block(bb).insts;
            if (idx as usize) < insts.len() {
                let inst = &insts[idx as usize];
                let mut uses = Vec::new();
                inst.collect_uses(&mut uses);
                assert!(
                    if is_def {
                        inst.def() == Some(v)
                    } else {
                        uses.contains(&v)
                    },
                    "claim ({bb:?},{idx},{v:?},{is_def}) does not match {inst:?}"
                );
            } else {
                assert_eq!(idx as usize, insts.len(), "terminator claims use len()");
                assert_eq!(f.block(bb).term.use_reg(), Some(v));
                assert!(!is_def, "terminator references are uses");
            }
        }
    }
}
