//! The end-to-end allocation pipeline of Figure 1: build → coalesce →
//! order → assign → (reconstruct ∘ spill)* → shuffle/save-restore code.

use std::collections::HashMap;

use ccra_analysis::{FrequencyInfo, FuncFreq};
use ccra_ir::{FuncId, Function, Program, RegClass};
use ccra_machine::{CostModel, PhysReg, RegisterFile, SaveKind};

use crate::build::{build_context_traced, FuncContext};
use crate::cbh::allocate_bank_cbh_traced;
use crate::chaitin::{allocate_bank_chaitin_traced, BankResult};
use crate::priority::allocate_bank_priority_traced;
use crate::rewrite::{insert_overhead_markers, FinalAssignment};
use crate::trace::{
    span_start, AllocEvent, AllocSink, FuncSummary, NoopSink, ProgramSummary, RoundStats, TraceCtx,
};
use crate::types::{AllocatorConfig, AllocatorKind, Loc, Overhead};

/// Hard cap on spill iterations; exceeded only by pathological inputs.
const MAX_ROUNDS: u32 = 60;

/// A summary of one colored live range, for inspection and tests.
#[derive(Debug, Clone)]
pub struct RangeSummary {
    /// The register bank.
    pub class: RegClass,
    /// Weighted spill cost at the final round.
    pub spill_cost: f64,
    /// Weighted caller-save cost.
    pub caller_cost: f64,
    /// Weighted callee-save cost.
    pub callee_cost: f64,
    /// Whether the range crosses any call.
    pub crosses_calls: bool,
    /// Where it ended up.
    pub loc: Loc,
}

/// The result of allocating one function. The rewritten function itself is
/// returned alongside (by [`allocate_function`]) or moved into the
/// rewritten [`Program`] (by [`allocate_program`]).
#[derive(Debug, Clone)]
pub struct FuncAllocation {
    /// The weighted overhead (Section 3 cost) of this function.
    pub overhead: Overhead,
    /// Build→color→spill rounds executed (1 = no spilling needed).
    pub rounds: u32,
    /// Live ranges spilled across all rounds.
    pub spilled_ranges: usize,
    /// Distinct callee-save registers used.
    pub callee_regs_used: usize,
    /// Final-round live ranges with their locations (spill temporaries from
    /// earlier rounds included).
    pub ranges: Vec<RangeSummary>,
}

/// The result of allocating a whole program.
#[derive(Debug, Clone)]
pub struct ProgramAllocation {
    /// The rewritten program (every function allocated).
    pub program: Program,
    /// Per-function results, indexed by function id.
    pub per_func: Vec<FuncAllocation>,
    /// Whole-program weighted overhead.
    pub overhead: Overhead,
}

impl ProgramAllocation {
    /// The result for one function.
    pub fn func(&self, id: FuncId) -> &FuncAllocation {
        &self.per_func[id.index()]
    }
}

fn allocate_banks_traced(
    ctx: &FuncContext,
    file: &RegisterFile,
    config: &AllocatorConfig,
    tr: &mut TraceCtx<'_>,
) -> BankResult {
    let mut merged = BankResult::default();
    for class in RegClass::ALL {
        let res = match config.kind {
            AllocatorKind::Chaitin | AllocatorKind::Optimistic => {
                allocate_bank_chaitin_traced(ctx, class, file, config, tr)
            }
            AllocatorKind::Priority(ordering) => {
                allocate_bank_priority_traced(ctx, class, file, ordering, tr)
            }
            AllocatorKind::Cbh => allocate_bank_cbh_traced(ctx, class, file, tr),
        };
        merged.colors.extend(res.colors);
        merged.spilled.extend(res.spilled);
    }
    merged
}

/// Allocates registers for one function, iterating spill rounds until no
/// live range needs to be spilled, then inserting overhead markers.
///
/// Returns the rewritten function (spill code plus overhead markers) and
/// the allocation summary.
///
/// # Panics
///
/// Panics if the allocation does not converge within 60 rounds
/// (which would indicate a register file too small for the instruction
/// shapes — impossible at the MIPS calling-convention minimum).
pub fn allocate_function(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
) -> (Function, FuncAllocation) {
    let mut sink = NoopSink;
    allocate_function_traced(f, freq, file, config, cost, &mut sink)
}

/// Like [`allocate_function`], emitting telemetry through `sink`: phase
/// spans and round stats per spill round, one decision record per live
/// range, spill-insertion stats, and a final [`FuncSummary`].
pub fn allocate_function_traced(
    f: &Function,
    freq: &FuncFreq,
    file: &RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
) -> (Function, FuncAllocation) {
    let name = f.name().to_string();
    let mut body = f.clone();
    let mut spilled_ranges = 0usize;
    let mut rounds = 0u32;
    let mut ctx = {
        let mut tr = TraceCtx::new(sink, &name, 1);
        build_context_traced(&body, freq, cost, &mut tr)
    };
    loop {
        rounds += 1;
        assert!(
            rounds <= MAX_ROUNDS,
            "register allocation of `{}` did not converge in {MAX_ROUNDS} rounds",
            f.name()
        );
        let mut tr = TraceCtx::new(sink, &name, rounds);
        if tr.enabled() {
            let max_degree = (0..ctx.nodes.len() as u32)
                .map(|n| ctx.graph.degree(n))
                .max()
                .unwrap_or(0);
            tr.emit(AllocEvent::Round(RoundStats {
                func: name.clone(),
                round: rounds,
                nodes: ctx.nodes.len(),
                edges: ctx.graph.num_edges(),
                max_degree,
            }));
        }
        let result = allocate_banks_traced(&ctx, file, config, &mut tr);
        if result.spilled.is_empty() {
            let assignment = FinalAssignment {
                colors: result.colors.clone(),
            };
            let callee_regs_used = assignment.callee_regs_used().len();
            insert_overhead_markers(&mut body, &ctx, &assignment);
            let overhead = crate::accounting::weighted_overhead(&body, freq);
            let ranges = summarize(&ctx, &result.colors);
            if tr.enabled() {
                tr.emit(AllocEvent::Func(FuncSummary {
                    func: name.clone(),
                    rounds,
                    spilled_ranges,
                    callee_regs_used,
                    spill: overhead.spill,
                    caller_save: overhead.caller_save,
                    callee_save: overhead.callee_save,
                    shuffle: overhead.shuffle,
                }));
            }
            let alloc = FuncAllocation {
                overhead,
                rounds,
                spilled_ranges,
                callee_regs_used,
                ranges,
            };
            return (body, alloc);
        }
        spilled_ranges += result.spilled.len();
        let rewrite =
            crate::spill::insert_spill_code_instrumented(&mut body, &ctx, &result.spilled, &mut tr);
        ctx = if config.incremental_reconstruction {
            crate::reconstruct::reconstruct_context_traced(
                &ctx,
                &rewrite,
                &result.spilled,
                &body,
                &mut tr,
            )
        } else {
            let mut tr = TraceCtx::new(sink, &name, rounds + 1);
            build_context_traced(&body, freq, cost, &mut tr)
        };
    }
}

fn summarize(ctx: &FuncContext, colors: &HashMap<u32, PhysReg>) -> Vec<RangeSummary> {
    ctx.nodes
        .iter()
        .enumerate()
        .map(|(n, node)| RangeSummary {
            class: node.class,
            spill_cost: node.spill_cost,
            caller_cost: node.caller_cost,
            callee_cost: node.callee_cost,
            crosses_calls: node.crosses_calls(),
            loc: match colors.get(&(n as u32)) {
                Some(&r) => Loc::Reg(r),
                None => Loc::Spilled,
            },
        })
        .collect()
}

/// Allocates registers for every function of a program.
///
/// Register allocation is intra-procedural, exactly as in the paper: each
/// function is colored independently; the frequencies supply the
/// inter-procedural weights (invocation counts drive callee-save cost).
pub fn allocate_program(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
) -> ProgramAllocation {
    allocate_program_with(program, freq, file, config, &CostModel::paper())
}

/// Like [`allocate_program`] with an explicit cost model.
pub fn allocate_program_with(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
) -> ProgramAllocation {
    let mut sink = NoopSink;
    allocate_program_with_traced(program, freq, file, config, cost, &mut sink)
}

/// Like [`allocate_program`], emitting telemetry through `sink`.
///
/// Uses the paper's cost model; see [`allocate_program_with_traced`] for an
/// explicit one.
pub fn allocate_program_traced(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    sink: &mut dyn AllocSink,
) -> ProgramAllocation {
    allocate_program_with_traced(program, freq, file, config, &CostModel::paper(), sink)
}

/// Like [`allocate_program_with`], emitting telemetry through `sink`: the
/// full per-function event stream of [`allocate_function_traced`] plus a
/// closing [`ProgramSummary`] carrying the whole-program overhead and the
/// total allocation wall-clock time.
pub fn allocate_program_with_traced(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    cost: &CostModel,
    sink: &mut dyn AllocSink,
) -> ProgramAllocation {
    let start = span_start(sink);
    let mut rewritten = Program::new();
    let mut per_func = Vec::with_capacity(program.num_functions());
    let mut overhead = Overhead::zero();
    for (id, f) in program.functions() {
        let (body, alloc) = allocate_function_traced(f, freq.func(id), &file, config, cost, sink);
        overhead += alloc.overhead;
        rewritten.add_function(body);
        per_func.push(alloc);
    }
    if let Some(main) = program.main() {
        rewritten.set_main(main);
    }
    if let Some(t) = start {
        sink.emit(AllocEvent::Program(ProgramSummary {
            config: config.label(),
            funcs: per_func.len(),
            spill: overhead.spill,
            caller_save: overhead.caller_save,
            callee_save: overhead.callee_save,
            shuffle: overhead.shuffle,
            micros: t.elapsed().as_micros() as u64,
        }));
    }
    ProgramAllocation {
        program: rewritten,
        per_func,
        overhead,
    }
}

/// Counts how many caller-save registers of each bank the final coloring
/// uses (for diagnostics).
pub fn count_kinds(alloc: &FuncAllocation) -> (usize, usize) {
    let mut caller = std::collections::HashSet::new();
    let mut callee = std::collections::HashSet::new();
    for r in alloc.ranges.iter().filter_map(|s| s.loc.reg()) {
        match r.kind {
            SaveKind::CallerSave => caller.insert(r),
            SaveKind::CalleeSave => callee.insert(r),
        };
    }
    (caller.len(), callee.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_analysis::{InterpConfig, Value};
    use ccra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, RegClass};

    /// A loop summing k live values, with a call inside.
    fn workload(k: usize, trips: i64) -> Program {
        let mut b = FunctionBuilder::new("main");
        let vs: Vec<_> = (0..k).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in vs.iter().enumerate() {
            b.iconst(v, j as i64 + 1);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, trips);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        p
    }

    #[test]
    fn allocation_preserves_semantics_under_all_allocators() {
        let p = workload(9, 13);
        let expect = ccra_analysis::run(&p, &InterpConfig::default())
            .unwrap()
            .result;
        assert_eq!(expect, Some(Value::Int(9 * 10 / 2 * 13)));
        let freq = FrequencyInfo::profile(&p).unwrap();
        let file = RegisterFile::new(6, 4, 1, 0); // tight: forces spills
        for config in [
            AllocatorConfig::base(),
            AllocatorConfig::improved(),
            AllocatorConfig::optimistic(),
            AllocatorConfig::improved_optimistic(),
            AllocatorConfig::priority(crate::PriorityOrdering::Sorting),
            AllocatorConfig::cbh(),
        ] {
            let out = allocate_program(&p, &freq, file, &config);
            out.program.verify().unwrap();
            let stats = ccra_analysis::run(&out.program, &InterpConfig::default()).unwrap();
            assert_eq!(stats.result, expect, "{config:?} changed semantics");
        }
    }

    #[test]
    fn measured_overhead_matches_weighted_overhead() {
        let p = workload(10, 17);
        let freq = FrequencyInfo::profile(&p).unwrap();
        let file = RegisterFile::new(6, 4, 2, 0);
        for config in [AllocatorConfig::base(), AllocatorConfig::improved()] {
            let out = allocate_program(&p, &freq, file, &config);
            let stats = ccra_analysis::run(&out.program, &InterpConfig::default()).unwrap();
            let measured = crate::accounting::measured_overhead(&stats);
            let analytic = out.overhead;
            for (m, a) in [
                (measured.spill, analytic.spill),
                (measured.caller_save, analytic.caller_save),
                (measured.callee_save, analytic.callee_save),
                (measured.shuffle, analytic.shuffle),
            ] {
                assert!(
                    (m - a).abs() < 1e-6,
                    "{config:?}: measured {measured:?} != analytic {analytic:?}"
                );
            }
        }
    }

    #[test]
    fn improved_beats_base_on_call_heavy_code() {
        // Values with low reference counts crossing a hot call: the base
        // allocator parks them in callee-save registers of a function
        // invoked once — harmless here — but given MANY registers it puts
        // cold call-crossing values into registers whose caller-save cost
        // exceeds their spill cost. Construct the classic case: cold values
        // crossing a hot call.
        let mut b = FunctionBuilder::new("main");
        let cold: Vec<_> = (0..4).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in cold.iter().enumerate() {
            b.iconst(v, j as i64);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 100);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        // The cold values are used once, after the loop.
        let mut acc = i;
        for &v in &cold {
            let t = b.new_vreg(RegClass::Int);
            b.binary(BinOp::Add, t, acc, v);
            acc = t;
        }
        b.ret(Some(acc));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).unwrap();
        // Caller-save registers only: the base allocator must keep the cold
        // values (which cross 100 call executions) in caller-save registers
        // at 200 ops each; improved spills them at 2 ops each.
        let file = RegisterFile::new(12, 4, 0, 0);
        let base = allocate_program(&p, &freq, file, &AllocatorConfig::base());
        let improved = allocate_program(&p, &freq, file, &AllocatorConfig::improved());
        assert!(
            improved.overhead.total() * 1.5 < base.overhead.total(),
            "improved {} vs base {}",
            improved.overhead.total(),
            base.overhead.total()
        );
        // The improvement comes from trading caller-save cost for spills.
        assert!(improved.overhead.caller_save < base.overhead.caller_save);
    }

    #[test]
    fn count_kinds_reports_distinct_registers() {
        let p = workload(6, 5);
        let freq = FrequencyInfo::profile(&p).unwrap();
        let out = allocate_program(
            &p,
            &freq,
            RegisterFile::new(8, 6, 3, 2),
            &AllocatorConfig::base(),
        );
        let fa = out.func(p.main().unwrap());
        let (caller, callee) = count_kinds(fa);
        assert!(caller + callee > 0, "something must be in registers");
        assert_eq!(callee, fa.callee_regs_used);
        assert!(caller <= 8 + 6 && callee <= 3 + 2);
    }

    #[test]
    fn rounds_and_spills_reported() {
        let p = workload(12, 5);
        let freq = FrequencyInfo::profile(&p).unwrap();
        let file = RegisterFile::new(6, 4, 0, 0);
        let out = allocate_program(&p, &freq, file, &AllocatorConfig::base());
        let fa = out.func(p.main().unwrap());
        assert!(fa.rounds >= 2, "spilling requires another round");
        assert!(fa.spilled_ranges > 0);
        assert!(fa.overhead.spill > 0.0);
    }

    #[test]
    fn incremental_reconstruction_preserves_semantics_and_quality() {
        let p = workload(12, 9);
        let expect = ccra_analysis::run(&p, &InterpConfig::default())
            .unwrap()
            .result;
        let freq = FrequencyInfo::profile(&p).unwrap();
        for file in [RegisterFile::new(6, 4, 0, 0), RegisterFile::new(8, 6, 2, 2)] {
            for base_config in [AllocatorConfig::base(), AllocatorConfig::improved()] {
                let rebuilt = allocate_program(&p, &freq, file, &base_config);
                let recon = allocate_program(&p, &freq, file, &base_config.with_reconstruction());
                recon.program.verify().unwrap();
                let got = ccra_analysis::run(&recon.program, &InterpConfig::default())
                    .unwrap()
                    .result;
                assert_eq!(got, expect, "reconstruction changed semantics");
                // The conservative graph may cost somewhat more, never an
                // order of magnitude.
                assert!(
                    recon.overhead.total() <= rebuilt.overhead.total() * 2.0 + 8.0,
                    "reconstruction {} vs rebuild {}",
                    recon.overhead.total(),
                    rebuilt.overhead.total()
                );
            }
        }
    }

    #[test]
    fn ample_registers_mean_zero_spill_cost_for_base() {
        // The *base* allocator colors everything when registers abound.
        // The improved allocator may still choose to spill (storage-class
        // analysis spills when memory is cheaper than any register) but
        // must never end up with a higher total.
        let p = workload(8, 10);
        let freq = FrequencyInfo::profile(&p).unwrap();
        let base = allocate_program(
            &p,
            &freq,
            RegisterFile::mips_full(),
            &AllocatorConfig::base(),
        );
        assert_eq!(base.overhead.spill, 0.0);
        assert_eq!(base.func(p.main().unwrap()).rounds, 1);
        let improved = allocate_program(
            &p,
            &freq,
            RegisterFile::mips_full(),
            &AllocatorConfig::improved(),
        );
        assert!(improved.overhead.total() <= base.overhead.total());
    }
}
