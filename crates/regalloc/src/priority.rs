//! Priority-based coloring (Chow & Hennessy) without live-range splitting,
//! as compared against in Section 9 of the paper.

use std::collections::{HashMap, HashSet};

use ccra_ir::RegClass;
use ccra_machine::{PhysReg, RegisterFile, SaveKind};

use crate::build::FuncContext;
use crate::chaitin::{emit_bank_decisions, BankResult, DecisionMeta};
use crate::error::AllocError;
use crate::trace::{Phase, TraceCtx};
use crate::types::PriorityOrdering;

/// Per-spill reasons collected during assignment, only when tracing.
type Reasons = Vec<(u32, &'static str)>;

/// Sorts node ids ascending by priority (ties broken by id for
/// determinism). Pushed in this order, the highest-priority node ends on
/// top of the color stack and is colored first.
fn sort_by_priority(ctx: &FuncContext, nodes: &mut [u32]) {
    nodes.sort_by(|&a, &b| {
        ctx.nodes[a as usize]
            .priority()
            .partial_cmp(&ctx.nodes[b as usize].priority())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.cmp(&a))
    });
}

/// Runs priority-based coloring on one register bank.
///
/// The priority function is `max(benefit_caller, benefit_callee) / size`
/// (Section 9.1). The three color orderings differ in how unconstrained
/// live ranges are stacked; in every case constrained live ranges are
/// colored from highest to lowest priority and spilled (not split) when no
/// legal color remains.
pub fn allocate_bank_priority(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
    ordering: PriorityOrdering,
) -> Result<BankResult, AllocError> {
    let mut sink = crate::trace::NoopSink;
    let mut tr = TraceCtx::new(&mut sink, "", 1);
    allocate_bank_priority_traced(ctx, class, file, ordering, &mut tr)
}

/// Like [`allocate_bank_priority`], emitting `simplify`/`select` phase spans
/// and one decision record per live range through the trace context.
pub fn allocate_bank_priority_traced(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
    ordering: PriorityOrdering,
    tr: &mut TraceCtx<'_>,
) -> Result<BankResult, AllocError> {
    let bank = ctx.bank_nodes(class);
    let n_colors = file.bank_size(class);
    if n_colors == 0 {
        let result = BankResult {
            colors: HashMap::new(),
            spilled: bank,
        };
        if tr.enabled() {
            let reasons: Reasons = result.spilled.iter().map(|&n| (n, "bank_empty")).collect();
            let meta = DecisionMeta {
                bs: None,
                forced: None,
            };
            emit_bank_decisions(tr, ctx, class, &result, &reasons, &meta);
        }
        return Ok(result);
    }

    // Build the color stack bottom-to-top.
    let span = tr.span();
    let mut stack: Vec<u32> = Vec::with_capacity(bank.len());
    match ordering {
        PriorityOrdering::Sorting => {
            let mut all = bank.clone();
            sort_by_priority(ctx, &mut all);
            stack = all;
        }
        PriorityOrdering::RemovingUnconstrained | PriorityOrdering::SortingUnconstrained => {
            // Iteratively remove unconstrained nodes (they are pushed first,
            // i.e. colored last — they can always find *some* register).
            let mut alive: HashSet<u32> = bank.iter().copied().collect();
            let mut degree: HashMap<u32, usize> = bank
                .iter()
                .map(|&n| {
                    (
                        n,
                        ctx.graph
                            .neighbors(n)
                            .iter()
                            .filter(|m| alive.contains(m))
                            .count(),
                    )
                })
                .collect();
            loop {
                let mut unconstrained: Vec<u32> = alive
                    .iter()
                    .copied()
                    .filter(|n| degree[n] < n_colors)
                    .collect();
                if unconstrained.is_empty() {
                    break;
                }
                if ordering == PriorityOrdering::SortingUnconstrained {
                    sort_by_priority(ctx, &mut unconstrained);
                } else {
                    unconstrained.sort_unstable();
                }
                let n = unconstrained[0];
                alive.remove(&n);
                for &m in ctx.graph.neighbors(n) {
                    if alive.contains(&m) {
                        match degree.get_mut(&m) {
                            Some(d) => *d -= 1,
                            None => {
                                return Err(AllocError::DegreeUnderflow {
                                    node: n,
                                    neighbor: m,
                                })
                            }
                        }
                    }
                }
                stack.push(n);
            }
            // Remaining constrained nodes: least priority first (highest on
            // top of the stack, colored first).
            let mut constrained: Vec<u32> = alive.into_iter().collect();
            sort_by_priority(ctx, &mut constrained);
            stack.extend(constrained);
        }
    }
    tr.span_end(span, Phase::Simplify);
    tr.count("priority_banks_total", 1);

    // Color assignment: highest priority first; spill on failure.
    let span = tr.span();
    let mut reasons: Option<Reasons> = tr.enabled().then(Vec::new);
    let mut colors: HashMap<u32, PhysReg> = HashMap::new();
    let mut spilled: Vec<u32> = Vec::new();
    let mut callee_used: HashSet<PhysReg> = HashSet::new();

    for &n in stack.iter().rev() {
        let node = &ctx.nodes[n as usize];
        // A live range whose best benefit is negative is cheaper in memory
        // than in any kind of register.
        if node.priority() < 0.0 && !node.is_spill_temp {
            spilled.push(n);
            if let Some(r) = reasons.as_mut() {
                r.push((n, "negative_priority"));
            }
            continue;
        }
        let taken: HashSet<PhysReg> = ctx
            .graph
            .neighbors(n)
            .iter()
            .filter_map(|m| colors.get(m).copied())
            .collect();
        let free_of = |kind: SaveKind| -> Option<PhysReg> {
            file.regs_of(class, kind).find(|r| !taken.contains(r))
        };
        let prefer_callee = node.benefit_callee() > node.benefit_caller();
        let (first, second) = if prefer_callee {
            (SaveKind::CalleeSave, SaveKind::CallerSave)
        } else {
            (SaveKind::CallerSave, SaveKind::CalleeSave)
        };
        let Some(reg) = free_of(first).or_else(|| free_of(second)) else {
            spilled.push(n);
            if let Some(r) = reasons.as_mut() {
                r.push((n, "no_free_reg"));
            }
            continue;
        };
        // Chow's callee-save handling: the first user of a callee-save
        // register pays the save/restore cost — if that cost exceeds the
        // live range's spill cost, spilling is preferable.
        if reg.kind == SaveKind::CalleeSave
            && !callee_used.contains(&reg)
            && node.benefit_callee() < 0.0
            && !node.is_spill_temp
        {
            spilled.push(n);
            if let Some(r) = reasons.as_mut() {
                r.push((n, "callee_first_spill"));
            }
            continue;
        }
        if reg.kind == SaveKind::CalleeSave {
            callee_used.insert(reg);
        }
        colors.insert(n, reg);
    }
    tr.span_end(span, Phase::Select);

    let result = BankResult { colors, spilled };
    tr.count("select_colored_total", result.colors.len() as u64);
    tr.count("select_spilled_total", result.spilled.len() as u64);
    if let Some(reasons) = reasons {
        let meta = DecisionMeta {
            bs: None,
            forced: None,
        };
        emit_bank_decisions(tr, ctx, class, &result, &reasons, &meta);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_context;
    use ccra_analysis::FrequencyInfo;
    use ccra_ir::{BinOp, CmpOp, FunctionBuilder, Program};
    use ccra_machine::CostModel;

    fn ctx_for(f: ccra_ir::Function) -> FuncContext {
        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        build_context(p.function(id), freq.func(id), &CostModel::paper()).expect("context builds")
    }

    /// k values live at once, with value j referenced `w[j]` times inside a
    /// loop so priorities differ.
    fn weighted_pressure(weights: &[i64]) -> ccra_ir::Function {
        let mut b = FunctionBuilder::new("main");
        let vs: Vec<_> = weights.iter().map(|_| b.new_vreg(RegClass::Int)).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.iconst(v, i as i64 + 1);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 20);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        for (j, &v) in vs.iter().enumerate() {
            for _ in 0..weights[j] {
                b.binary(BinOp::Add, acc, acc, v);
            }
        }
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        let mut total = acc;
        for &v in &vs {
            let t = b.new_vreg(RegClass::Int);
            b.binary(BinOp::Add, t, total, v);
            total = t;
        }
        b.ret(Some(total));
        b.finish()
    }

    #[test]
    fn all_orderings_produce_legal_colorings() {
        let ctx = ctx_for(weighted_pressure(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let file = RegisterFile::new(6, 4, 1, 0);
        for ordering in [
            PriorityOrdering::RemovingUnconstrained,
            PriorityOrdering::SortingUnconstrained,
            PriorityOrdering::Sorting,
        ] {
            let res = allocate_bank_priority(&ctx, RegClass::Int, &file, ordering)
                .expect("bank allocates");
            for (&a, &ra) in &res.colors {
                for (&b, &rb) in &res.colors {
                    if a != b && ctx.graph.interferes(a, b) {
                        assert_ne!(ra, rb, "{ordering:?} produced a conflict");
                    }
                }
            }
        }
    }

    #[test]
    fn high_priority_ranges_survive_spilling() {
        // More live values than registers: priority-based coloring must
        // keep the hottest values in registers and spill the coldest.
        let ctx = ctx_for(weighted_pressure(&[1, 1, 1, 1, 1, 1, 1, 10, 10, 10]));
        let file = RegisterFile::new(6, 4, 0, 0);
        let res = allocate_bank_priority(&ctx, RegClass::Int, &file, PriorityOrdering::Sorting)
            .expect("bank allocates");
        assert!(!res.spilled.is_empty());
        let hottest = ctx
            .bank_nodes(RegClass::Int)
            .into_iter()
            .max_by(|&a, &b| {
                ctx.nodes[a as usize]
                    .priority()
                    .partial_cmp(&ctx.nodes[b as usize].priority())
                    .expect("priorities are comparable")
            })
            .expect("bank is non-empty");
        assert!(
            res.colors.contains_key(&hottest),
            "the highest-priority node must receive a register"
        );
        for &s in &res.spilled {
            assert!(ctx.nodes[s as usize].priority() <= ctx.nodes[hottest as usize].priority());
        }
    }

    #[test]
    fn negative_priority_nodes_are_spilled() {
        // A value in a frequently-invoked function, defined at entry, live
        // across a call, but *used* only on a rare path: its spill cost
        // falls below both the caller-save cost (it crosses a call every
        // invocation) and the callee-save cost (paid every invocation), so
        // its priority is negative and priority-based coloring spills it.
        let mut p = Program::new();
        let mut g = FunctionBuilder::new("g");
        let par = g.new_vreg(RegClass::Int);
        g.set_params(vec![par]);
        let x = g.new_vreg(RegClass::Int);
        g.binary(BinOp::Add, x, par, par); // def of x, every invocation
        g.call(ccra_ir::Callee::External("ext"), vec![], None); // x crosses
        let seven = g.new_vreg(RegClass::Int);
        g.iconst(seven, 7);
        let m = g.new_vreg(RegClass::Int);
        g.binary(BinOp::Rem, m, par, seven);
        let c = g.new_vreg(RegClass::Int);
        g.cmp(CmpOp::Eq, c, m, seven); // true never (par % 7 != 7)
        let rare = g.reserve_block();
        let common = g.reserve_block();
        let join = g.reserve_block();
        g.branch(c, rare, common);
        g.switch_to(rare);
        let r1 = g.new_vreg(RegClass::Int);
        g.binary(BinOp::Add, r1, x, par); // the only use of x: never runs
        g.jump(join);
        g.switch_to(common);
        g.jump(join);
        g.switch_to(join);
        g.ret(Some(par));
        let g_id = p.add_function(g.finish());

        let mut b = FunctionBuilder::new("main");
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 30);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(ccra_ir::Callee::Internal(g_id), vec![i], None);
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let main_id = p.add_function(b.finish());
        p.set_main(main_id);

        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let ctx = build_context(p.function(g_id), freq.func(g_id), &CostModel::paper())
            .expect("context builds");
        // x is defined by the first instruction of g's entry block.
        let x_node = ctx
            .def_node(p.function(g_id).entry(), 0, x)
            .expect("x has a node");
        assert!(ctx.nodes[x_node as usize].crosses_calls());
        assert!(
            ctx.nodes[x_node as usize].priority() < 0.0,
            "x: spill={} caller={} callee={}",
            ctx.nodes[x_node as usize].spill_cost,
            ctx.nodes[x_node as usize].caller_cost,
            ctx.nodes[x_node as usize].callee_cost
        );
        let file = RegisterFile::new(8, 4, 4, 0);
        let res = allocate_bank_priority(&ctx, RegClass::Int, &file, PriorityOrdering::Sorting)
            .expect("bank allocates");
        assert!(res.spilled.contains(&x_node));
    }
}
