//! The allocation-quality observatory: scores a finished
//! [`ProgramAllocation`] on *how good the allocation is*, not how fast it
//! was produced.
//!
//! Two independent views of the same program are combined:
//!
//! * **Estimated** cost — the frequency-weighted overhead the allocator
//!   itself believes it inserted: a walk of the rewritten instruction
//!   streams weighting every `SpillLoad`/`SpillStore`/`Overhead` marker
//!   by its block's execution frequency
//!   ([`crate::accounting::weighted_overhead`]), converted to cycles by a
//!   [`CycleModel`].
//! * **Measured** cost — the overhead operations the deterministic
//!   interpreter actually executes when the allocated program is replayed
//!   ([`ccra_analysis::run`]): whole-program overhead counters plus
//!   per-function attribution via the replay's block counts (block ids
//!   are stable across the rewrite — spill insertion adds instructions,
//!   never blocks).
//!
//! Under a *dynamic* frequency profile the two agree exactly (the
//! estimate is the measurement, a property the pipeline tests pin); under
//! *static* loop-depth estimates they drift, and that drift —
//! [`QualityReport::drift_pct`] — is itself the observable: it says how
//! far the allocator's cost model is from the truth on this workload.
//!
//! Everything here is a **pure post-pass** over the merged
//! [`ProgramAllocation`]. The parallel driver's ordering invariant
//! (per-function results indexed by function id, byte-identical merge at
//! any worker count) therefore extends to quality reports for free:
//! scoring the merge of N workers produces the same bytes as scoring the
//! serial allocation — a property the driver tests pin at workers
//! 1/2/4/8.
//!
//! # Memory profiling
//!
//! The module also hosts the per-[`Phase`] allocation-accounting tally
//! ([`MemProfile`]) behind the same zero-cost-when-off discipline as
//! `trace`/`metrics`: a thread-local that is `None` until
//! [`memprof_start`] arms it, so the pipeline's [`memprof_record`] sites
//! cost one thread-local read when profiling is off. The crate forbids
//! `unsafe`, so there is no global-allocator shim; the sites record
//! explicit byte *estimates* of the dominant per-phase structures (graph
//! adjacency, node arrays, spill rewrites, reference claims) — exactly
//! the before-numbers an arena/data-layout overhaul needs.

use std::cell::RefCell;

use ccra_analysis::{FrequencyInfo, InterpConfig, RunStats};
use ccra_ir::{FuncId, Function, Inst, OverheadKind};
use ccra_machine::CycleModel;
use serde::json::Value;

use crate::accounting::{measured_overhead, weighted_overhead};
use crate::metrics::MetricsRegistry;
use crate::pipeline::ProgramAllocation;
use crate::trace::Phase;
use crate::types::Overhead;

/// One phase's allocation-accounting tally (explicit byte estimates, see
/// the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseMem {
    /// The largest single resident-bytes estimate recorded in this phase
    /// (the phase's peak working set, as estimated by its record sites).
    pub peak_bytes: u64,
    /// Sum of all recorded estimates (total allocation churn attributed
    /// to this phase).
    pub total_bytes: u64,
    /// How many allocation events (record calls) the phase logged.
    pub allocs: u64,
}

/// Per-[`Phase`] allocation accounting for one profiled region, indexed
/// in [`Phase::ALL`] order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemProfile {
    /// One tally per pipeline phase, in [`Phase::ALL`] order.
    pub per_phase: [PhaseMem; Phase::ALL.len()],
}

impl MemProfile {
    /// The tally of one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseMem {
        &self.per_phase[phase_index(phase)]
    }

    /// The largest per-phase peak — the profiled region's high-water
    /// estimate.
    pub fn peak_bytes(&self) -> u64 {
        self.per_phase
            .iter()
            .map(|p| p.peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total recorded allocation events across all phases.
    pub fn total_allocs(&self) -> u64 {
        self.per_phase.iter().map(|p| p.allocs).sum()
    }

    /// Folds another profile into this one (peaks max, totals sum) — how
    /// per-function tallies aggregate into a program profile.
    pub fn merge(&mut self, other: &MemProfile) {
        for (mine, theirs) in self.per_phase.iter_mut().zip(other.per_phase.iter()) {
            mine.peak_bytes = mine.peak_bytes.max(theirs.peak_bytes);
            mine.total_bytes += theirs.total_bytes;
            mine.allocs += theirs.allocs;
        }
    }

    /// The profile as a JSON object: one entry per phase that recorded
    /// anything, plus the overall peak (deterministic: [`Phase::ALL`]
    /// order).
    pub fn to_json_value(&self) -> Value {
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let mem = self.phase(phase);
            if mem.allocs == 0 {
                continue;
            }
            phases.push((
                phase.name().to_string(),
                Value::Obj(vec![
                    ("peak_bytes".to_string(), Value::Int(mem.peak_bytes as i64)),
                    (
                        "total_bytes".to_string(),
                        Value::Int(mem.total_bytes as i64),
                    ),
                    ("allocs".to_string(), Value::Int(mem.allocs as i64)),
                ]),
            ));
        }
        Value::Obj(vec![
            (
                "peak_bytes".to_string(),
                Value::Int(self.peak_bytes() as i64),
            ),
            (
                "total_allocs".to_string(),
                Value::Int(self.total_allocs() as i64),
            ),
            ("phases".to_string(), Value::Obj(phases)),
        ])
    }
}

fn phase_index(phase: Phase) -> usize {
    Phase::ALL
        .iter()
        .position(|&p| p == phase)
        .expect("Phase::ALL is exhaustive")
}

thread_local! {
    static MEMPROF: RefCell<Option<MemProfile>> = const { RefCell::new(None) };
}

/// Arms the calling thread's memory-profiling tally (resetting any prior
/// one). Until this is called, [`memprof_record`] is a no-op costing one
/// thread-local read — the enabled-flag pattern of `trace`/`metrics`.
pub fn memprof_start() {
    MEMPROF.with(|t| *t.borrow_mut() = Some(MemProfile::default()));
}

/// Records one allocation event: `bytes` estimated resident for `phase`
/// on this thread. No-op unless [`memprof_start`] armed the tally.
pub fn memprof_record(phase: Phase, bytes: u64) {
    MEMPROF.with(|t| {
        if let Some(profile) = t.borrow_mut().as_mut() {
            let mem = &mut profile.per_phase[phase_index(phase)];
            mem.peak_bytes = mem.peak_bytes.max(bytes);
            mem.total_bytes += bytes;
            mem.allocs += 1;
        }
    });
}

/// Disarms the calling thread's tally and returns it; `None` if
/// [`memprof_start`] never armed it.
pub fn memprof_finish() -> Option<MemProfile> {
    MEMPROF.with(|t| t.borrow_mut().take())
}

/// One function's quality scores within a [`QualityReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct FuncQuality {
    /// The function name.
    pub func: String,
    /// Estimated (frequency-weighted) overhead of the rewritten body.
    pub estimated: Overhead,
    /// Replay-measured overhead attributed to this function via block
    /// counts; `None` when the replay failed or never ran.
    pub measured: Option<Overhead>,
    /// Live ranges spilled across all rounds.
    pub spilled_ranges: usize,
    /// Distinct callee-save registers used.
    pub callee_regs_used: usize,
    /// Whether this function took the degraded spill-everything fallback.
    pub degraded: bool,
    /// How many times the replay entered this function (`None` without a
    /// replay).
    pub entry_count: Option<u64>,
}

/// The quality score of one allocated program (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// The allocator configuration label (e.g. `SC+BS+PR`).
    pub config: String,
    /// Per-function scores, in function-id order.
    pub funcs: Vec<FuncQuality>,
    /// Whole-program estimated overhead (sum of the per-function
    /// estimates).
    pub estimated: Overhead,
    /// Estimated execution cycles: weighted useful instructions plus the
    /// estimated overhead, priced by the [`CycleModel`].
    pub estimated_cycles: f64,
    /// Whole-program overhead the interpreter actually executed; `None`
    /// when the replay failed.
    pub measured: Option<Overhead>,
    /// Measured execution cycles (replayed steps + measured overhead,
    /// same [`CycleModel`]); `None` when the replay failed.
    pub measured_cycles: Option<f64>,
    /// Why the replay failed, when it did (a program without `main`, a
    /// step-limit abort). Scoring never aborts on a replay failure — the
    /// estimate is still a score.
    pub replay_error: Option<String>,
    /// The per-phase memory profile of the allocation that produced this
    /// program, when one was collected.
    pub mem: Option<MemProfile>,
}

impl QualityReport {
    /// Estimate-vs-measured drift of total overhead ops, percent of the
    /// measured value: `100 × (estimated − measured) / measured`. `None`
    /// without a replay; `0` when both are zero.
    pub fn drift_pct(&self) -> Option<f64> {
        let measured = self.measured?.total();
        let estimated = self.estimated.total();
        if measured == 0.0 {
            return Some(if estimated == 0.0 { 0.0 } else { f64::INFINITY });
        }
        Some(100.0 * (estimated - measured) / measured)
    }

    /// Functions that took the degraded fallback.
    pub fn degraded_funcs(&self) -> usize {
        self.funcs.iter().filter(|f| f.degraded).count()
    }

    /// The report as a deterministic JSON object (functions in id order,
    /// phases in [`Phase::ALL`] order) — the `quality` payload of
    /// `/status` and the explain/eval snapshots.
    pub fn to_json_value(&self) -> Value {
        let overhead_value = |o: &Overhead| {
            Value::Obj(vec![
                ("spill".to_string(), Value::Float(o.spill)),
                ("caller_save".to_string(), Value::Float(o.caller_save)),
                ("callee_save".to_string(), Value::Float(o.callee_save)),
                ("shuffle".to_string(), Value::Float(o.shuffle)),
                ("total".to_string(), Value::Float(o.total())),
            ])
        };
        let funcs = self
            .funcs
            .iter()
            .map(|f| {
                let mut fields = vec![
                    ("func".to_string(), Value::Str(f.func.clone())),
                    ("estimated".to_string(), overhead_value(&f.estimated)),
                    (
                        "spilled_ranges".to_string(),
                        Value::Int(f.spilled_ranges as i64),
                    ),
                    (
                        "callee_regs_used".to_string(),
                        Value::Int(f.callee_regs_used as i64),
                    ),
                    ("degraded".to_string(), Value::Bool(f.degraded)),
                ];
                if let Some(measured) = &f.measured {
                    fields.push(("measured".to_string(), overhead_value(measured)));
                }
                if let Some(entries) = f.entry_count {
                    fields.push(("entry_count".to_string(), Value::Int(entries as i64)));
                }
                Value::Obj(fields)
            })
            .collect();
        let mut fields = vec![
            ("config".to_string(), Value::Str(self.config.clone())),
            ("estimated".to_string(), overhead_value(&self.estimated)),
            (
                "estimated_cycles".to_string(),
                Value::Float(self.estimated_cycles),
            ),
        ];
        if let Some(measured) = &self.measured {
            fields.push(("measured".to_string(), overhead_value(measured)));
        }
        if let Some(cycles) = self.measured_cycles {
            fields.push(("measured_cycles".to_string(), Value::Float(cycles)));
        }
        if let Some(drift) = self.drift_pct() {
            fields.push(("drift_pct".to_string(), Value::Float(drift)));
        }
        if let Some(err) = &self.replay_error {
            fields.push(("replay_error".to_string(), Value::Str(err.clone())));
        }
        if let Some(mem) = &self.mem {
            fields.push(("mem".to_string(), mem.to_json_value()));
        }
        fields.push(("funcs".to_string(), Value::Arr(funcs)));
        Value::Obj(fields)
    }

    /// Exports the program-level scores into a metrics registry
    /// (counters in whole ops, gauges for cycles and drift) — what the
    /// batch service folds into its `/metrics` export.
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        m.inc("quality_reports_total");
        m.add("quality_est_spill_ops", self.estimated.spill as u64);
        m.add(
            "quality_est_caller_save_ops",
            self.estimated.caller_save as u64,
        );
        m.add(
            "quality_est_callee_save_ops",
            self.estimated.callee_save as u64,
        );
        m.add("quality_est_shuffle_ops", self.estimated.shuffle as u64);
        m.gauge_set("quality_estimated_cycles", self.estimated_cycles);
        if let Some(measured) = &self.measured {
            m.add("quality_measured_overhead_ops", measured.total() as u64);
        }
        if let Some(cycles) = self.measured_cycles {
            m.gauge_set("quality_measured_cycles", cycles);
        }
        if let Some(drift) = self.drift_pct() {
            if drift.is_finite() {
                m.gauge_set("quality_drift_pct", drift);
            }
        } else {
            m.inc("quality_replay_failures_total");
        }
    }
}

/// The overhead operations one rewritten function executes per replay,
/// attributed by block counts: every `SpillLoad`/`SpillStore` costs one
/// op per block execution, every `Overhead` marker its `ops`.
fn replayed_overhead(f: &Function, id: FuncId, stats: &RunStats) -> Overhead {
    let mut overhead = Overhead::zero();
    let counts = &stats.block_counts[id];
    for (bb, block) in f.blocks() {
        let executed = counts[bb] as f64;
        if executed == 0.0 {
            continue;
        }
        for inst in &block.insts {
            match inst {
                Inst::SpillLoad { .. } | Inst::SpillStore { .. } => overhead.spill += executed,
                Inst::Overhead { kind, ops } => {
                    let ops = executed * f64::from(*ops);
                    match kind {
                        OverheadKind::Spill => overhead.spill += ops,
                        OverheadKind::CallerSave => overhead.caller_save += ops,
                        OverheadKind::CalleeSave => overhead.callee_save += ops,
                        OverheadKind::Shuffle => overhead.shuffle += ops,
                    }
                }
                _ => {}
            }
        }
    }
    overhead
}

/// Frequency-weighted useful (non-overhead) instructions of one
/// rewritten function, terminators included — the `insts` argument the
/// [`CycleModel`] prices estimated cycles with.
fn weighted_useful_insts(f: &Function, freq: &ccra_analysis::FuncFreq) -> f64 {
    let mut useful = 0.0;
    for (bb, block) in f.blocks() {
        let w = freq.block(bb);
        let insts = block
            .insts
            .iter()
            .filter(|i| {
                !matches!(
                    i,
                    Inst::SpillLoad { .. } | Inst::SpillStore { .. } | Inst::Overhead { .. }
                )
            })
            .count();
        useful += w * (insts as f64 + 1.0); // +1: the terminator.
    }
    useful
}

fn cycles_of(cycles: &CycleModel, insts: f64, overhead: &Overhead) -> f64 {
    cycles.cycles(
        insts,
        overhead.spill + overhead.caller_save + overhead.callee_save,
        overhead.shuffle,
    )
}

/// Scores an allocated program: estimated cost from `freq`-weighted
/// walks of the rewritten bodies, measured cost from one interpreter
/// replay under the default [`InterpConfig`]. See [`score_program_with`].
pub fn score_program(
    alloc: &ProgramAllocation,
    freq: &FrequencyInfo,
    config_label: &str,
    cycles: &CycleModel,
) -> QualityReport {
    score_program_with(alloc, freq, config_label, cycles, &InterpConfig::default())
}

/// [`score_program`] with an explicit interpreter configuration. A replay
/// failure (no `main`, step-limit abort) degrades the report — the
/// measured side comes back `None` with [`QualityReport::replay_error`]
/// set — rather than failing the scoring: the estimate is always
/// available.
///
/// Deterministic: a pure function of the (already deterministic) merged
/// allocation and frequency info, so the report is byte-identical no
/// matter how many workers produced the allocation.
pub fn score_program_with(
    alloc: &ProgramAllocation,
    freq: &FrequencyInfo,
    config_label: &str,
    cycles: &CycleModel,
    interp: &InterpConfig,
) -> QualityReport {
    let (stats, replay_error) = match ccra_analysis::run(&alloc.program, interp) {
        Ok(stats) => (Some(stats), None),
        Err(e) => (None, Some(e.to_string())),
    };
    let mut funcs = Vec::with_capacity(alloc.per_func.len());
    let mut estimated = Overhead::zero();
    let mut useful = 0.0;
    for (id, f) in alloc.program.functions() {
        let func_alloc = alloc.func(id);
        let func_freq = freq.func(id);
        let est = weighted_overhead(f, func_freq);
        estimated += est;
        useful += weighted_useful_insts(f, func_freq);
        funcs.push(FuncQuality {
            func: f.name().to_string(),
            estimated: est,
            measured: stats.as_ref().map(|s| replayed_overhead(f, id, s)),
            spilled_ranges: func_alloc.spilled_ranges,
            callee_regs_used: func_alloc.callee_regs_used,
            degraded: func_alloc.degraded,
            entry_count: stats.as_ref().map(|s| s.entry_counts[id]),
        });
    }
    let measured = stats.as_ref().map(measured_overhead);
    let measured_cycles = stats
        .as_ref()
        .zip(measured.as_ref())
        .map(|(s, m)| cycles_of(cycles, s.steps as f64, m));
    QualityReport {
        config: config_label.to_string(),
        funcs,
        estimated,
        estimated_cycles: cycles_of(cycles, useful, &estimated),
        measured,
        measured_cycles,
        replay_error,
        mem: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::allocate_program;
    use crate::types::AllocatorConfig;
    use ccra_machine::RegisterFile;
    use ccra_workloads::{spec_program, SpecProgram};

    fn scored(config: &AllocatorConfig) -> QualityReport {
        let p = spec_program(SpecProgram::Compress);
        let freq = FrequencyInfo::estimate(&p);
        let file = RegisterFile::new(6, 4, 2, 0);
        let alloc = allocate_program(&p, &freq, file, config).expect("allocates");
        score_program(&alloc, &freq, &config.label(), &CycleModel::decstation())
    }

    #[test]
    fn static_estimates_drift_but_attribution_sums_to_the_measurement() {
        let report = scored(&AllocatorConfig::improved());
        let measured = report.measured.expect("replay succeeds");
        assert!(report.replay_error.is_none());
        // Per-function attribution via block counts must sum exactly to
        // the interpreter's whole-program overhead counters.
        let per_func: Overhead = report
            .funcs
            .iter()
            .filter_map(|f| f.measured)
            .fold(Overhead::zero(), |a, b| a + b);
        for (got, want) in [
            (per_func.spill, measured.spill),
            (per_func.caller_save, measured.caller_save),
            (per_func.callee_save, measured.callee_save),
            (per_func.shuffle, measured.shuffle),
        ] {
            assert!((got - want).abs() < 1e-6, "{got} != {want}");
        }
        // Both cost views are priced.
        assert!(report.estimated_cycles > 0.0);
        assert!(report.measured_cycles.expect("measured cycles") > 0.0);
        assert!(report.drift_pct().is_some());
    }

    #[test]
    fn dynamic_profile_has_zero_drift() {
        let p = spec_program(SpecProgram::Compress);
        let freq = FrequencyInfo::profile(&p).expect("profiles");
        let file = RegisterFile::new(6, 4, 2, 0);
        let config = AllocatorConfig::improved();
        let alloc = allocate_program(&p, &freq, file, &config).expect("allocates");
        let report = score_program(&alloc, &freq, &config.label(), &CycleModel::decstation());
        let drift = report.drift_pct().expect("replay succeeds");
        assert!(
            drift.abs() < 1e-6,
            "dynamic-profile estimate must equal the measurement, drift {drift}%"
        );
    }

    #[test]
    fn replay_failure_degrades_to_estimate_only() {
        // A program with no main cannot be replayed.
        let mut b = ccra_ir::FunctionBuilder::new("not_main");
        let x = b.new_vreg(ccra_ir::RegClass::Int);
        b.iconst(x, 1);
        b.ret(Some(x));
        let mut p = ccra_ir::Program::new();
        p.add_function(b.finish());
        let freq = FrequencyInfo::estimate(&p);
        let config = AllocatorConfig::base();
        let alloc =
            allocate_program(&p, &freq, RegisterFile::new(6, 4, 2, 0), &config).expect("allocates");
        let report = score_program(&alloc, &freq, &config.label(), &CycleModel::decstation());
        assert!(report.measured.is_none());
        assert!(report.measured_cycles.is_none());
        assert!(report.replay_error.is_some());
        assert!(report.drift_pct().is_none());
        // The estimate side still scored (an uncalled function estimates
        // at zero frequency, so just finite), and JSON still renders.
        assert!(report.estimated_cycles.is_finite());
        assert_eq!(report.funcs.len(), 1);
        assert!(report.to_json_value().get("replay_error").is_some());
    }

    #[test]
    fn report_json_is_deterministic_and_metrics_export() {
        let a = scored(&AllocatorConfig::base());
        let b = scored(&AllocatorConfig::base());
        assert_eq!(a.to_json_value().to_json(), b.to_json_value().to_json());
        let mut m = MetricsRegistry::new();
        a.export_metrics(&mut m);
        assert_eq!(m.counter("quality_reports_total"), 1);
        assert!(m.gauge("quality_estimated_cycles").unwrap() > 0.0);
        // Off is off: a disabled registry records nothing.
        let mut off = MetricsRegistry::disabled();
        a.export_metrics(&mut off);
        assert_eq!(off.counter("quality_reports_total"), 0);
    }

    #[test]
    fn memprof_tally_is_off_until_armed_and_merges() {
        assert!(memprof_finish().is_none(), "disarmed by default");
        memprof_record(Phase::Build, 1_000_000);
        assert!(memprof_finish().is_none(), "recording while off is a no-op");

        memprof_start();
        memprof_record(Phase::Build, 100);
        memprof_record(Phase::Build, 400);
        memprof_record(Phase::Rewrite, 50);
        let profile = memprof_finish().expect("armed tally comes back");
        assert_eq!(profile.phase(Phase::Build).peak_bytes, 400);
        assert_eq!(profile.phase(Phase::Build).total_bytes, 500);
        assert_eq!(profile.phase(Phase::Build).allocs, 2);
        assert_eq!(profile.phase(Phase::Rewrite).allocs, 1);
        assert_eq!(profile.peak_bytes(), 400);
        assert_eq!(profile.total_allocs(), 3);
        assert!(memprof_finish().is_none(), "finish disarms");

        let mut merged = profile.clone();
        merged.merge(&profile);
        assert_eq!(merged.phase(Phase::Build).peak_bytes, 400, "peaks max");
        assert_eq!(merged.phase(Phase::Build).total_bytes, 1000, "totals sum");
        let json = merged.to_json_value();
        assert!(json.get("phases").and_then(|p| p.get("build")).is_some());
        assert!(
            json.get("phases").and_then(|p| p.get("coalesce")).is_none(),
            "silent phases are omitted"
        );
    }

    #[test]
    fn pipeline_records_memprof_when_armed() {
        let p = spec_program(SpecProgram::Compress);
        let freq = FrequencyInfo::estimate(&p);
        memprof_start();
        let _ = allocate_program(
            &p,
            &freq,
            RegisterFile::new(6, 4, 2, 0),
            &AllocatorConfig::improved(),
        )
        .expect("allocates");
        let profile = memprof_finish().expect("armed");
        assert!(
            profile.phase(Phase::Build).allocs > 0,
            "build phase recorded allocation events"
        );
        assert!(profile.phase(Phase::Build).peak_bytes > 0);
        assert!(profile.phase(Phase::Rewrite).allocs > 0);
    }
}
