//! Incremental graph reconstruction (the *graph reconstruction* phase of
//! Figure 1).
//!
//! After spill-code insertion, the interference graph changes in a very
//! local way: the spilled nodes disappear, and a handful of tiny spill
//! temporaries appear at the spilled nodes' reference sites. Rebuilding
//! liveness, webs, and the whole graph from scratch (the default) is
//! wasteful; this module instead *updates* the previous round's
//! [`FuncContext`]:
//!
//! * surviving nodes keep their attributes, with instruction indices
//!   remapped through the spill rewrite;
//! * each temporary becomes a fresh unspillable node whose interference is
//!   a sound over-approximation: everything its spilled parent interfered
//!   with (anything live at the temporary's site was live at one of the
//!   parent's reference sites), plus the other temporaries at the same
//!   instruction.
//!
//! The over-approximation can only *add* edges relative to a rebuild, so
//! colorings stay conflict-free; allocation quality is typically identical
//! (temporaries are far below any bank's size in degree). Enable it with
//! [`crate::AllocatorConfig::incremental_reconstruction`]; the
//! `reconstruction` Criterion bench measures the compile-time win.

use std::collections::{HashMap, HashSet};

use ccra_ir::Function;

use crate::build::FuncContext;
use crate::graph::InterferenceGraph;
use crate::node::{NodeInfo, SPILL_TEMP_COST};
use crate::spill::SpillRewrite;

/// Like [`reconstruct_context`], wrapped in a `reconstruct` phase span
/// emitted through the trace context.
pub fn reconstruct_context_traced(
    ctx: &FuncContext,
    rewrite: &SpillRewrite,
    spilled: &[u32],
    f: &Function,
    tr: &mut crate::trace::TraceCtx<'_>,
) -> FuncContext {
    let span = tr.span();
    let out = reconstruct_context(ctx, rewrite, spilled, f);
    tr.span_end(span, crate::trace::Phase::Reconstruct);
    tr.count("reconstruct_rounds_total", 1);
    tr.count("reconstruct_temps_total", rewrite.temps.len() as u64);
    out
}

/// Updates `ctx` in place of a full rebuild after one spill round.
///
/// `spilled` and `rewrite` must come from the same round;
/// `f` is the function *after* spill-code insertion.
pub fn reconstruct_context(
    ctx: &FuncContext,
    rewrite: &SpillRewrite,
    spilled: &[u32],
    f: &Function,
) -> FuncContext {
    let spilled_set: HashSet<u32> = spilled.iter().copied().collect();
    let remap = |bb: ccra_ir::BlockId, idx: u32| -> u32 {
        match rewrite.index_maps.get(&bb) {
            Some(map) if (idx as usize) < map.len() => map[idx as usize],
            // Terminator references (index == original length) move to the
            // new block length.
            _ => f.block(bb).insts.len() as u32,
        }
    };

    // Compact the surviving nodes.
    let mut new_of_old: HashMap<u32, u32> = HashMap::new();
    let mut nodes: Vec<NodeInfo> = Vec::with_capacity(ctx.nodes.len());
    for (old, node) in ctx.nodes.iter().enumerate() {
        if spilled_set.contains(&(old as u32)) {
            continue;
        }
        let mut node = node.clone();
        for (bb, i, _) in node.defs.iter_mut().chain(node.uses.iter_mut()) {
            *i = remap(*bb, *i);
        }
        new_of_old.insert(old as u32, nodes.len() as u32);
        nodes.push(node);
    }

    // Remap the call sites and the webs.
    let mut callsites = ctx.callsites.clone();
    for site in &mut callsites {
        site.idx = remap(site.bb, site.idx);
    }
    let mut webs = ctx.webs.clone();
    webs.remap_indices(remap);

    // Surviving web → node mapping.
    let mut web_node: HashMap<ccra_analysis::WebId, u32> = ctx
        .web_node
        .iter()
        .filter_map(|(&w, &old)| new_of_old.get(&old).map(|&new| (w, new)))
        .collect();

    // Spill temporaries: one unspillable node each.
    let entry_freq = ctx.entry_freq;
    let mut temp_ids: Vec<u32> = Vec::with_capacity(rewrite.temps.len());
    for t in &rewrite.temps {
        let idx = if t.idx == u32::MAX {
            f.block(t.bb).insts.len() as u32
        } else {
            t.idx
        };
        let id = nodes.len() as u32;
        temp_ids.push(id);
        let (defs, uses) = if t.is_def {
            (vec![(t.bb, idx, t.vreg)], vec![])
        } else {
            (vec![], vec![(t.bb, idx, t.vreg)])
        };
        let web = webs.add_synthetic(t.vreg, (t.bb, idx), t.is_def);
        web_node.insert(web, id);
        nodes.push(NodeInfo {
            class: f.class_of(t.vreg),
            spill_cost: SPILL_TEMP_COST,
            caller_cost: 0.0,
            callee_cost: entry_freq * 2.0,
            size: 1,
            calls_crossed: Vec::new(),
            webs: vec![web],
            is_spill_temp: true,
            defs,
            uses,
            param_vregs: Vec::new(),
        });
    }

    // Edges: survivor–survivor edges carry over; each temporary interferes
    // with its parent's surviving neighbors and with co-located temps.
    let mut graph = InterferenceGraph::new(nodes.len());
    for old_a in 0..ctx.nodes.len() as u32 {
        let Some(&a) = new_of_old.get(&old_a) else {
            continue;
        };
        for &old_b in ctx.graph.neighbors(old_a) {
            if old_a < old_b {
                if let Some(&b) = new_of_old.get(&old_b) {
                    graph.add_edge(a, b);
                }
            }
        }
    }
    let mut by_site: HashMap<(ccra_ir::BlockId, u32), Vec<u32>> = HashMap::new();
    for (t, &id) in rewrite.temps.iter().zip(&temp_ids) {
        let class = nodes[id as usize].class;
        let site = if t.idx == u32::MAX {
            (t.bb, f.block(t.bb).insts.len() as u32)
        } else {
            (t.bb, t.idx)
        };
        for &old_n in ctx.graph.neighbors(t.parent) {
            let Some(&n) = new_of_old.get(&old_n) else {
                continue;
            };
            if nodes[n as usize].class != class {
                continue;
            }
            // A temporary lives only in its instruction's immediate
            // vicinity. Non-temp neighbors of the parent may be live there;
            // temps from earlier rounds only if they reference the very
            // same instruction. Inheriting edges to *all* earlier temps
            // would compound across rounds into artificial temp cliques.
            let neighbor = &nodes[n as usize];
            if neighbor.is_spill_temp {
                let co_located = neighbor
                    .defs
                    .iter()
                    .chain(&neighbor.uses)
                    .any(|&(bb, i, _)| (bb, i) == site);
                if !co_located {
                    continue;
                }
            }
            graph.add_edge(id, n);
        }
        by_site.entry(site).or_default().push(id);
    }
    for (_, ids) in by_site {
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if nodes[a as usize].class == nodes[b as usize].class {
                    graph.add_edge(a, b);
                }
            }
        }
    }

    FuncContext {
        nodes,
        graph,
        callsites,
        entry_freq,
        web_node,
        webs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_context;
    use crate::spill::insert_spill_code_traced;
    use ccra_analysis::FrequencyInfo;
    use ccra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, Program, RegClass};
    use ccra_machine::CostModel;

    fn sample_program() -> Program {
        let mut b = FunctionBuilder::new("main");
        let vs: Vec<_> = (0..6).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in vs.iter().enumerate() {
            b.iconst(v, j as i64);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 10);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        p
    }

    /// The reconstructed graph must contain every edge a rebuild finds
    /// (it may contain more — it is a sound over-approximation).
    #[test]
    fn reconstruction_is_a_superset_of_rebuild() {
        let p = sample_program();
        let id = p.main().expect("main set");
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        // Spill two mid-cost nodes.
        let spilled: Vec<u32> = (0..ctx.nodes.len() as u32)
            .filter(|&n| !ctx.nodes[n as usize].is_spill_temp)
            .take(2)
            .collect();
        let mut body = p.function(id).clone();
        let rw = insert_spill_code_traced(&mut body, &ctx, &spilled).expect("spill code inserts");
        assert!(rw.inserted > 0);
        let recon = reconstruct_context(&ctx, &rw, &spilled, &body);
        let rebuilt =
            build_context(&body, freq.func(id), &CostModel::paper()).expect("context builds");

        assert_eq!(
            recon.nodes.len(),
            rebuilt.nodes.len(),
            "same node population"
        );
        // Match nodes across the two contexts by shared reference sites
        // (a (block, index, vreg) triple belongs to exactly one node; the
        // rebuild gives temporaries an extra ref at their spill load/store,
        // which simply fails the lookup and falls through to the next ref).
        let mut recon_of_ref: HashMap<(u32, u32, u32), u32> = HashMap::new();
        for n in 0..recon.nodes.len() as u32 {
            let node = &recon.nodes[n as usize];
            for &(bb, i, v) in node.defs.iter().chain(&node.uses) {
                recon_of_ref.insert((bb.0, i, v.0), n);
            }
        }
        let find_in_recon = |n: u32| -> u32 {
            let node = &rebuilt.nodes[n as usize];
            node.defs
                .iter()
                .chain(&node.uses)
                .find_map(|&(bb, i, v)| recon_of_ref.get(&(bb.0, i, v.0)).copied())
                .unwrap_or_else(|| unreachable!("rebuilt node {n} has no counterpart: {node:?}"))
        };
        for a in 0..rebuilt.nodes.len() as u32 {
            for &b in rebuilt.graph.neighbors(a) {
                if a < b {
                    let (ca, cb) = (find_in_recon(a), find_in_recon(b));
                    assert!(
                        recon.graph.interferes(ca, cb),
                        "edge {a}-{b} of the rebuild is missing in the reconstruction"
                    );
                }
            }
        }
    }

    #[test]
    fn reconstruction_remaps_callsites() {
        let p = sample_program();
        let id = p.main().expect("main set");
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        let spilled: Vec<u32> = (0..2u32)
            .filter(|&n| !ctx.nodes[n as usize].is_spill_temp)
            .collect();
        let mut body = p.function(id).clone();
        let rw = insert_spill_code_traced(&mut body, &ctx, &spilled).expect("spill code inserts");
        let recon = reconstruct_context(&ctx, &rw, &spilled, &body);
        for site in &recon.callsites {
            assert!(
                body.block(site.bb).insts[site.idx as usize].is_call(),
                "call site remapped to a non-call instruction"
            );
        }
    }
}
