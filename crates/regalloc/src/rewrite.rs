//! Shuffle- and save/restore-code insertion (the last phase of Figure 1).
//!
//! After the final coloring round (no remaining spills), this pass makes
//! every remaining overhead event explicit in the instruction stream:
//!
//! * an [`ccra_ir::Inst::Overhead`] marker with kind `CallerSave` before
//!   every call, counting two operations (save + restore) per caller-save
//!   register live across it;
//! * `CalleeSave` markers at function entry and before every return,
//!   counting one operation per callee-save register used;
//! * a `Shuffle` marker before every remaining copy whose source and
//!   destination ended up in different registers.
//!
//! Running the rewritten function in the interpreter then *measures* the
//! register-allocation overhead the cost functions estimated.

use std::collections::{HashMap, HashSet};

use ccra_ir::{BlockId, Function, Inst, OverheadKind, Terminator};
use ccra_machine::{PhysReg, SaveKind};

use crate::build::FuncContext;

/// A summary of the final assignment used by the rewriter and accounting.
#[derive(Debug, Clone)]
pub struct FinalAssignment {
    /// node → register (every non-spilled node; the final round has no
    /// spills).
    pub colors: HashMap<u32, PhysReg>,
}

impl FinalAssignment {
    /// The distinct callee-save registers in use.
    pub fn callee_regs_used(&self) -> HashSet<PhysReg> {
        self.colors
            .values()
            .copied()
            .filter(|r| r.kind == SaveKind::CalleeSave)
            .collect()
    }
}

/// How marker insertion rewrote the instruction stream.
#[derive(Debug, Clone, Default)]
pub struct MarkerRewrite {
    /// Marker instructions inserted.
    pub inserted: usize,
    /// Per block: new index of each pre-marker instruction. A reference
    /// recorded at the old `insts.len()` (a terminator use) maps to the new
    /// `insts.len()`.
    pub index_maps: HashMap<BlockId, Vec<u32>>,
}

impl MarkerRewrite {
    /// Maps a pre-marker instruction index in `bb` to its post-marker
    /// index; indices past the end of the map (terminator uses) map to
    /// `term_idx`, the new `insts.len()`.
    pub fn remap(&self, bb: BlockId, idx: u32, term_idx: u32) -> u32 {
        match self.index_maps.get(&bb).and_then(|m| m.get(idx as usize)) {
            Some(&new_idx) => new_idx,
            None => term_idx,
        }
    }
}

/// Inserts overhead markers into `f` according to the final assignment.
///
/// `ctx` must describe the *current* body of `f`. Returns the number of
/// marker instructions inserted and the per-block index remapping (so
/// per-reference claims recorded against the pre-marker stream can be
/// carried over to the final one).
pub fn insert_overhead_markers(
    f: &mut Function,
    ctx: &FuncContext,
    assignment: &FinalAssignment,
) -> MarkerRewrite {
    // Caller-save pairs per call site: 2 ops per crossing caller-save node.
    let mut call_ops: HashMap<(BlockId, u32), u32> = HashMap::new();
    for (n, node) in ctx.nodes.iter().enumerate() {
        let Some(reg) = assignment.colors.get(&(n as u32)) else {
            continue;
        };
        if reg.kind != SaveKind::CallerSave {
            continue;
        }
        for &s in &node.calls_crossed {
            let site = ctx.callsites[s as usize];
            *call_ops.entry((site.bb, site.idx)).or_insert(0) += 2;
        }
    }

    let callee_count = assignment.callee_regs_used().len() as u32;

    let mut rewrite = MarkerRewrite::default();
    let blocks: Vec<BlockId> = f.block_ids().collect();
    for bb in blocks {
        let old = std::mem::take(&mut f.block_mut(bb).insts);
        let mut new_insts: Vec<Inst> = Vec::with_capacity(old.len() + 2);
        let mut index_map: Vec<u32> = Vec::with_capacity(old.len());

        // Callee-save saves at entry.
        if bb == f.entry() && callee_count > 0 {
            new_insts.push(Inst::Overhead {
                kind: OverheadKind::CalleeSave,
                ops: callee_count,
            });
            rewrite.inserted += 1;
        }

        for (i, inst) in old.into_iter().enumerate() {
            // Caller-save save/restore around calls.
            if let Some(&ops) = call_ops.get(&(bb, i as u32)) {
                new_insts.push(Inst::Overhead {
                    kind: OverheadKind::CallerSave,
                    ops,
                });
                rewrite.inserted += 1;
            }
            // Shuffle moves: copies whose ends live in different registers.
            if let Inst::Copy { dst, src } = inst {
                let dn = ctx.def_node(bb, i as u32, dst);
                let sn = ctx.use_node(bb, i as u32, src);
                if let (Some(dn), Some(sn)) = (dn, sn) {
                    let (dr, sr) = (assignment.colors.get(&dn), assignment.colors.get(&sn));
                    if let (Some(dr), Some(sr)) = (dr, sr) {
                        if dr != sr {
                            new_insts.push(Inst::Overhead {
                                kind: OverheadKind::Shuffle,
                                ops: 1,
                            });
                            rewrite.inserted += 1;
                        }
                    }
                }
            }
            index_map.push(new_insts.len() as u32);
            new_insts.push(inst);
        }

        // Callee-save restores before returns.
        if callee_count > 0 && matches!(f.block(bb).term, Terminator::Return(_)) {
            new_insts.push(Inst::Overhead {
                kind: OverheadKind::CalleeSave,
                ops: callee_count,
            });
            rewrite.inserted += 1;
        }

        rewrite.index_maps.insert(bb, index_map);
        f.block_mut(bb).insts = new_insts;
    }
    rewrite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_context;
    use ccra_analysis::FrequencyInfo;
    use ccra_ir::{BinOp, Callee, FunctionBuilder, Program, RegClass};
    use ccra_machine::{CostModel, RegisterFile};

    #[test]
    fn caller_save_marker_before_call() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        let r = b.new_vreg(RegClass::Int);
        b.call(Callee::External("g"), vec![], Some(r));
        b.binary(BinOp::Add, r, r, x);
        b.ret(Some(r));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("ok");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        let file = RegisterFile::minimum();
        let res = crate::chaitin::allocate_bank_chaitin(
            &ctx,
            RegClass::Int,
            &file,
            &crate::AllocatorConfig::base(),
        )
        .expect("bank allocates");
        assert!(res.spilled.is_empty());
        let assignment = FinalAssignment { colors: res.colors };
        let mut f = p.function(id).clone();
        let inserted = insert_overhead_markers(&mut f, &ctx, &assignment).inserted;
        // x crosses the call in a caller-save register (no callee regs
        // exist at the ABI minimum), so exactly one marker appears.
        assert_eq!(inserted, 1);
        let entry = f.entry();
        let call_pos = f
            .block(entry)
            .insts
            .iter()
            .position(|i| i.is_call())
            .expect("ok");
        assert!(matches!(
            f.block(entry).insts[call_pos - 1],
            Inst::Overhead {
                kind: OverheadKind::CallerSave,
                ops: 2
            }
        ));
    }

    #[test]
    fn callee_save_markers_at_entry_and_exit() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        let r = b.new_vreg(RegClass::Int);
        b.call(Callee::External("g"), vec![], Some(r));
        b.binary(BinOp::Add, r, r, x);
        b.ret(Some(r));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("ok");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        // With callee-save registers available, the base allocator parks
        // the crossing value in one.
        let file = RegisterFile::new(6, 4, 2, 2);
        let res = crate::chaitin::allocate_bank_chaitin(
            &ctx,
            RegClass::Int,
            &file,
            &crate::AllocatorConfig::base(),
        )
        .expect("bank allocates");
        let assignment = FinalAssignment { colors: res.colors };
        assert_eq!(assignment.callee_regs_used().len(), 1);
        let mut f = p.function(id).clone();
        insert_overhead_markers(&mut f, &ctx, &assignment);
        let entry = f.entry();
        let insts = &f.block(entry).insts;
        assert!(matches!(
            insts[0],
            Inst::Overhead {
                kind: OverheadKind::CalleeSave,
                ops: 1
            }
        ));
        assert!(matches!(
            insts[insts.len() - 1],
            Inst::Overhead {
                kind: OverheadKind::CalleeSave,
                ops: 1
            }
        ));
    }
}
