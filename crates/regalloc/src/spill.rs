//! Spill-code insertion (the penultimate phase of Figure 1).
//!
//! Each spilled node gets one stack slot (its member webs never overlap, so
//! they can share it, exactly as they would have shared a register). Every
//! def is redirected to a fresh spill temporary followed by a
//! [`ccra_ir::Inst::SpillStore`]; every use is preceded by a
//! [`ccra_ir::Inst::SpillLoad`] into a fresh temporary. The register
//! allocator then rebuilds the graph and restarts from coalescing.

use std::collections::HashMap;

use ccra_ir::{BlockId, Function, Inst, SpillSlot, Terminator, VReg};

use crate::build::FuncContext;
use crate::error::AllocError;

/// Replaces every *use* of `from` in `inst` with `to`.
fn replace_uses(inst: &mut Inst, from: VReg, to: VReg) {
    let sub = |v: &mut VReg| {
        if *v == from {
            *v = to;
        }
    };
    match inst {
        Inst::IConst { .. }
        | Inst::FConst { .. }
        | Inst::Overhead { .. }
        | Inst::SpillLoad { .. } => {}
        Inst::Binary { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
            sub(lhs);
            sub(rhs);
        }
        Inst::Unary { src, .. } | Inst::Copy { src, .. } | Inst::SpillStore { src, .. } => sub(src),
        Inst::Load { addr, .. } => sub(addr),
        Inst::Store { src, addr, .. } => {
            sub(src);
            sub(addr);
        }
        Inst::Call { args, .. } => args.iter_mut().for_each(sub),
    }
}

/// Redirects the *def* of `inst` (at `block:idx`, for diagnostics) to `to`.
///
/// Errors if the instruction defines nothing: the spilled node's def refs
/// then disagree with the instruction stream.
fn replace_def(inst: &mut Inst, to: VReg, block: BlockId, idx: u32) -> Result<(), AllocError> {
    match inst {
        Inst::IConst { dst, .. }
        | Inst::FConst { dst, .. }
        | Inst::Binary { dst, .. }
        | Inst::Unary { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Copy { dst, .. }
        | Inst::SpillLoad { dst, .. } => *dst = to,
        Inst::Call { ret, .. } => match ret.as_mut() {
            Some(r) => *r = to,
            None => return Err(AllocError::CallWithoutReturn { block, idx }),
        },
        Inst::Store { .. } | Inst::SpillStore { .. } | Inst::Overhead { .. } => {
            return Err(AllocError::NoDefToReplace { block, idx })
        }
    }
    Ok(())
}

/// A spill temporary created by spill-code insertion, with its location in
/// the *rewritten* instruction stream — the input to graph reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct TempRef {
    /// The block containing the rewritten reference.
    pub bb: BlockId,
    /// The index (in the new stream) of the instruction referencing the
    /// temporary (the original instruction, not the spill load/store).
    /// `u32::MAX` marks the terminator.
    pub idx: u32,
    /// The temporary register.
    pub vreg: VReg,
    /// The node that was spilled (in the pre-rewrite context's node ids).
    pub parent: u32,
    /// Whether the temporary receives the instruction's def (else it feeds
    /// a use).
    pub is_def: bool,
}

/// Everything graph reconstruction needs to know about one spill round.
#[derive(Debug, Clone, Default)]
pub struct SpillRewrite {
    /// Spill instructions inserted.
    pub inserted: usize,
    /// Per block: new index of each original instruction.
    pub index_maps: HashMap<BlockId, Vec<u32>>,
    /// The temporaries created, with their (new) locations.
    pub temps: Vec<TempRef>,
}

/// Inserts spill code for every node in `spilled`, rewriting `f` in place.
///
/// Returns the number of spill instructions inserted. `ctx` must have been
/// built from the *current* body of `f` (indices in its node refs address
/// the pre-rewrite instruction stream). For incremental graph
/// reconstruction use [`insert_spill_code_traced`].
pub fn insert_spill_code(
    f: &mut Function,
    ctx: &FuncContext,
    spilled: &[u32],
) -> Result<usize, AllocError> {
    Ok(insert_spill_code_traced(f, ctx, spilled)?.inserted)
}

/// Like [`insert_spill_code_traced`], additionally emitting a
/// `spill_insert` phase span and a [`crate::trace::SpillStats`] event
/// through the trace context.
pub fn insert_spill_code_instrumented(
    f: &mut Function,
    ctx: &FuncContext,
    spilled: &[u32],
    tr: &mut crate::trace::TraceCtx<'_>,
) -> Result<SpillRewrite, AllocError> {
    let span = tr.span();
    let rewrite = insert_spill_code_traced(f, ctx, spilled)?;
    tr.span_end(span, crate::trace::Phase::SpillInsert);
    tr.count("spill_ranges_total", spilled.len() as u64);
    tr.count("spill_insts_total", rewrite.inserted as u64);
    tr.count("spill_temps_total", rewrite.temps.len() as u64);
    if tr.enabled() {
        tr.emit(crate::trace::AllocEvent::Spill(crate::trace::SpillStats {
            func: tr.func().to_string(),
            round: tr.round(),
            spilled: spilled.len(),
            inserted: rewrite.inserted,
            temps: rewrite.temps.len(),
        }));
    }
    Ok(rewrite)
}

/// Like [`insert_spill_code`], additionally reporting the index remapping
/// and the temporaries created, so the interference graph can be updated
/// incrementally (the *graph reconstruction* phase of Figure 1).
pub fn insert_spill_code_traced(
    f: &mut Function,
    ctx: &FuncContext,
    spilled: &[u32],
) -> Result<SpillRewrite, AllocError> {
    let slots: HashMap<u32, SpillSlot> = spilled.iter().map(|&n| (n, f.new_spill_slot())).collect();

    // Original block lengths: terminator uses carry index == insts.len().
    let orig_len: HashMap<BlockId, u32> = f
        .blocks()
        .map(|(bb, b)| (bb, b.insts.len() as u32))
        .collect();

    type Key = (BlockId, u32);
    let mut use_plan: HashMap<Key, Vec<(VReg, SpillSlot, u32)>> = HashMap::new();
    let mut def_plan: HashMap<Key, (VReg, SpillSlot, u32)> = HashMap::new();
    let mut param_stores: Vec<(VReg, SpillSlot)> = Vec::new();

    for &n in spilled {
        let node = &ctx.nodes[n as usize];
        let slot = slots[&n];
        for &(bb, i, v) in &node.uses {
            use_plan.entry((bb, i)).or_default().push((v, slot, n));
        }
        for &(bb, i, v) in &node.defs {
            let prev = def_plan.insert((bb, i), (v, slot, n));
            if prev.is_some() {
                return Err(AllocError::DuplicateSpilledDef {
                    block: bb,
                    idx: i,
                    vreg: v,
                });
            }
        }
        for &p in &node.param_vregs {
            param_stores.push((p, slot));
        }
    }

    let mut rewrite = SpillRewrite::default();
    let blocks: Vec<BlockId> = f.block_ids().collect();
    for bb in blocks {
        let old = std::mem::take(&mut f.block_mut(bb).insts);
        let mut term = f.block(bb).term.clone();
        let mut new_insts: Vec<Inst> = Vec::with_capacity(old.len());
        let mut index_map: Vec<u32> = Vec::with_capacity(old.len());

        // Spilled parameters are stored to their slots on entry.
        if bb == f.entry() {
            for &(p, slot) in &param_stores {
                new_insts.push(Inst::SpillStore { slot, src: p });
                rewrite.inserted += 1;
            }
        }

        for (i, mut inst) in old.into_iter().enumerate() {
            let key = (bb, i as u32);
            if let Some(loads) = use_plan.get(&key) {
                for &(v, slot, parent) in loads {
                    let t = f.new_spill_temp(f.class_of(v));
                    new_insts.push(Inst::SpillLoad { dst: t, slot });
                    rewrite.inserted += 1;
                    replace_uses(&mut inst, v, t);
                    rewrite.temps.push(TempRef {
                        bb,
                        idx: u32::MAX, // patched below once the index is known
                        vreg: t,
                        parent,
                        is_def: false,
                    });
                }
            }
            let inst_idx = new_insts.len() as u32;
            index_map.push(inst_idx);
            // Patch the pending use temps with the final instruction index.
            for t in rewrite.temps.iter_mut().rev() {
                if t.idx == u32::MAX && t.bb == bb && !t.is_def {
                    t.idx = inst_idx;
                } else if t.idx != u32::MAX {
                    break;
                }
            }
            match def_plan.get(&key) {
                Some(&(v, slot, parent)) => {
                    let t = f.new_spill_temp(f.class_of(v));
                    replace_def(&mut inst, t, bb, i as u32)?;
                    new_insts.push(inst);
                    new_insts.push(Inst::SpillStore { slot, src: t });
                    rewrite.inserted += 1;
                    rewrite.temps.push(TempRef {
                        bb,
                        idx: inst_idx,
                        vreg: t,
                        parent,
                        is_def: true,
                    });
                }
                None => new_insts.push(inst),
            }
        }

        // Terminator use: recorded with index == original insts.len().
        if let Some(loads) = use_plan.get(&(bb, orig_len[&bb])) {
            for &(v, slot, parent) in loads {
                let t = f.new_spill_temp(f.class_of(v));
                new_insts.push(Inst::SpillLoad { dst: t, slot });
                rewrite.inserted += 1;
                rewrite.temps.push(TempRef {
                    bb,
                    idx: u32::MAX,
                    vreg: t,
                    parent,
                    is_def: false,
                });
                match &mut term {
                    Terminator::Branch { cond, .. } if *cond == v => *cond = t,
                    Terminator::Return(Some(r)) if *r == v => *r = t,
                    _ => {}
                }
            }
        }

        rewrite.index_maps.insert(bb, index_map);
        let block = f.block_mut(bb);
        block.insts = new_insts;
        block.term = term;
    }
    Ok(rewrite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_context;
    use ccra_analysis::{FrequencyInfo, InterpConfig, Value};
    use ccra_ir::{BinOp, FunctionBuilder, Program, RegClass};
    use ccra_machine::CostModel;

    /// Spilling a node must preserve program semantics exactly.
    #[test]
    fn spilling_preserves_semantics() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        let z = b.new_vreg(RegClass::Int);
        b.iconst(x, 6);
        b.iconst(y, 7);
        b.binary(BinOp::Mul, z, x, y);
        b.binary(BinOp::Add, z, z, x);
        b.ret(Some(z));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let before = ccra_analysis::run(&p, &InterpConfig::default()).expect("ok");
        assert_eq!(before.result, Some(Value::Int(48)));

        let freq = FrequencyInfo::profile(&p).expect("ok");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        // Spill every node.
        let all: Vec<u32> = (0..ctx.nodes.len() as u32).collect();
        let mut f = p.function(id).clone();
        let inserted = insert_spill_code(&mut f, &ctx, &all).expect("spill code inserts");
        assert!(inserted > 0);
        ccra_ir::verify_function(&f).expect("ok");

        let mut p2 = Program::new();
        let id2 = p2.add_function(f);
        p2.set_main(id2);
        let after = ccra_analysis::run(&p2, &InterpConfig::default()).expect("ok");
        assert_eq!(after.result, Some(Value::Int(48)));
        assert_eq!(
            after.overhead(ccra_ir::OverheadKind::Spill) as usize,
            inserted
        );
    }

    #[test]
    fn spilled_param_stored_at_entry() {
        let mut b = FunctionBuilder::new("main");
        let par = b.new_vreg(RegClass::Int);
        b.set_params(vec![par]);
        let r = b.new_vreg(RegClass::Int);
        b.binary(BinOp::Add, r, par, par);
        b.ret(Some(r));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("ok");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        let param_node = (0..ctx.nodes.len() as u32)
            .find(|&n| !ctx.nodes[n as usize].param_vregs.is_empty())
            .expect("ok");
        let mut f = p.function(id).clone();
        insert_spill_code(&mut f, &ctx, &[param_node]).expect("spill code inserts");
        let entry = f.entry();
        assert!(matches!(f.block(entry).insts[0], Inst::SpillStore { .. }));
        ccra_ir::verify_function(&f).expect("ok");
    }

    #[test]
    fn terminator_use_reloaded() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 9);
        b.ret(Some(x));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("ok");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        let mut f = p.function(id).clone();
        insert_spill_code(&mut f, &ctx, &[0]).expect("spill code inserts");
        // ret operand must now be a spill temp, reloaded just before.
        let entry = f.entry();
        let last = f.block(entry).insts.last().expect("ok");
        assert!(matches!(last, Inst::SpillLoad { .. }));
        if let Terminator::Return(Some(r)) = f.block(entry).term {
            assert!(f.vreg(r).is_spill_temp);
        } else {
            unreachable!("expected return with value");
        }
        let mut p2 = Program::new();
        let id2 = p2.add_function(f);
        p2.set_main(id2);
        let stats = ccra_analysis::run(&p2, &InterpConfig::default()).expect("ok");
        assert_eq!(stats.result, Some(Value::Int(9)));
    }

    /// `v = v + 1` with v spilled: reload, add, store back.
    #[test]
    fn def_and_use_same_instruction() {
        let mut b = FunctionBuilder::new("main");
        let v = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(v, 10);
        b.iconst(one, 1);
        b.binary(BinOp::Add, v, v, one);
        b.binary(BinOp::Add, v, v, one);
        b.ret(Some(v));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("ok");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        let all: Vec<u32> = (0..ctx.nodes.len() as u32).collect();
        let mut f = p.function(id).clone();
        insert_spill_code(&mut f, &ctx, &all).expect("spill code inserts");
        ccra_ir::verify_function(&f).expect("ok");
        let mut p2 = Program::new();
        let id2 = p2.add_function(f);
        p2.set_main(id2);
        let stats = ccra_analysis::run(&p2, &InterpConfig::default()).expect("ok");
        assert_eq!(stats.result, Some(Value::Int(12)));
    }
}
