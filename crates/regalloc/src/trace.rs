//! Allocation telemetry: typed events emitted through an [`AllocSink`].
//!
//! The paper's contribution is a sequence of *decisions* — storage-class
//! benefits (SC, Section 4), benefit-driven simplification keys (BS,
//! Section 5), preference votes at call sites (PR, Section 6) — but the
//! pipeline's results only surface end-of-run aggregates. This module makes
//! the decisions observable:
//!
//! * [`PhaseSpan`] — wall-clock time of one pipeline phase (build,
//!   coalesce, simplify, select, spill-insert, reconstruct);
//! * [`RoundStats`] — interference-graph shape at the start of a round;
//! * [`Decision`] — why one live range ended up in its final [`Loc`]:
//!   the SC benefits, the BS key and its value, the PR vote count, and a
//!   spill-vs-promote reason;
//! * [`SpillStats`] — what one round of spill-code insertion did;
//! * [`FuncSummary`] / [`ProgramSummary`] — end-of-run aggregates, the
//!   anchors for baseline comparison.
//!
//! Everything flows through an [`AllocSink`]. The default [`NoopSink`]
//! reports `enabled() == false`, and every instrumentation site gates its
//! event construction (and its `Instant::now()` calls) on that flag, so an
//! untraced allocation does no timing, no formatting, and no allocation for
//! telemetry. [`RecordingSink`] collects events in memory for tests and
//! ad-hoc inspection; [`JsonlSink`] streams them as one JSON object per
//! line, the format the `ccra-eval` `trace` binary emits and diffs.
//!
//! [`Loc`]: crate::Loc
//!
//! The [`chrometrace`] submodule serializes a driver
//! [`crate::driver::Timeline`] into the Chrome Trace Event Format for
//! Perfetto / `chrome://tracing`.

pub mod chrometrace;

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Instant;

use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// The instrumented pipeline phases (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Liveness, webs, and web-level interference scanning.
    Build,
    /// Aggressive coalescing and node construction.
    Coalesce,
    /// Color ordering: simplification (and preference decision).
    Simplify,
    /// Color assignment, including storage-class analysis.
    Select,
    /// Spill-code insertion.
    SpillInsert,
    /// Incremental graph reconstruction.
    Reconstruct,
    /// Final rewrite: overhead markers and reference claims.
    Rewrite,
    /// The independent allocation checker.
    Check,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 8] = [
        Phase::Build,
        Phase::Coalesce,
        Phase::Simplify,
        Phase::Select,
        Phase::SpillInsert,
        Phase::Reconstruct,
        Phase::Rewrite,
        Phase::Check,
    ];

    /// The snake_case name used in serialized events.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Build => "build",
            Phase::Coalesce => "coalesce",
            Phase::Simplify => "simplify",
            Phase::Select => "select",
            Phase::SpillInsert => "spill_insert",
            Phase::Reconstruct => "reconstruct",
            Phase::Rewrite => "rewrite",
            Phase::Check => "check",
        }
    }

    /// The histogram this phase's wall-clock observations land in (see
    /// [`crate::metrics::MetricsRegistry`]).
    pub fn metric_name(self) -> &'static str {
        match self {
            Phase::Build => "phase_build_micros",
            Phase::Coalesce => "phase_coalesce_micros",
            Phase::Simplify => "phase_simplify_micros",
            Phase::Select => "phase_select_micros",
            Phase::SpillInsert => "phase_spill_insert_micros",
            Phase::Reconstruct => "phase_reconstruct_micros",
            Phase::Rewrite => "phase_rewrite_micros",
            Phase::Check => "phase_check_micros",
        }
    }
}

/// Wall-clock time of one pipeline phase within one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// The function being allocated.
    pub func: String,
    /// The spill round (1-based; round 1 is the initial coloring).
    pub round: u32,
    /// The phase name (see [`Phase::name`]).
    pub phase: String,
    /// Elapsed wall-clock microseconds.
    pub micros: u64,
}

/// Interference-graph shape at the start of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// The function being allocated.
    pub func: String,
    /// The spill round.
    pub round: u32,
    /// Allocation nodes (coalesced live ranges).
    pub nodes: usize,
    /// Interference edges.
    pub edges: usize,
    /// Largest node degree.
    pub max_degree: usize,
}

/// Why one live range ended up where it did (Sections 4–6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The function being allocated.
    pub func: String,
    /// The spill round the decision was made in.
    pub round: u32,
    /// The node id within that round's context.
    pub node: u32,
    /// The register bank (`"int"` or `"float"`).
    pub class: String,
    /// `benefit_caller(lr)` — spill cost minus caller-save cost.
    pub benefit_caller: f64,
    /// `benefit_callee(lr)` — spill cost minus callee-save cost.
    pub benefit_callee: f64,
    /// The benefit-driven-simplification key in use (`"max_benefit"`,
    /// `"benefit_delta"`, or `"none"`).
    pub bs_key: String,
    /// The node's value under that key (absent when BS is off).
    pub bs_value: Option<f64>,
    /// Call sites voting on this node's preference (the sites it crosses).
    pub pref_votes: u32,
    /// Whether preference decision forced the node to caller-save.
    pub pref_forced: bool,
    /// The final location: a register name or `"spilled"`.
    pub loc: String,
    /// The spill-vs-promote reason (e.g. `"colored"`, `"no_color"`,
    /// `"sc_caller_spill"`, `"sc_shared_spill"`, `"pressure_spill"`).
    pub reason: String,
}

/// What one round of spill-code insertion did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpillStats {
    /// The function being allocated.
    pub func: String,
    /// The spill round.
    pub round: u32,
    /// Live ranges spilled this round.
    pub spilled: usize,
    /// Spill instructions inserted.
    pub inserted: usize,
    /// Spill temporaries created.
    pub temps: usize,
}

/// End-of-run aggregates for one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncSummary {
    /// The function.
    pub func: String,
    /// Rounds executed (1 = no spilling needed).
    pub rounds: u32,
    /// Live ranges spilled across all rounds.
    pub spilled_ranges: usize,
    /// Distinct callee-save registers used.
    pub callee_regs_used: usize,
    /// Weighted spill overhead.
    pub spill: f64,
    /// Weighted caller-save overhead.
    pub caller_save: f64,
    /// Weighted callee-save overhead.
    pub callee_save: f64,
    /// Weighted shuffle overhead.
    pub shuffle: f64,
}

/// End-of-run aggregates for a whole program — the baseline-comparison
/// anchor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramSummary {
    /// The allocator configuration label (e.g. `"SC+BS+PR"`).
    pub config: String,
    /// Functions allocated.
    pub funcs: usize,
    /// Weighted spill overhead.
    pub spill: f64,
    /// Weighted caller-save overhead.
    pub caller_save: f64,
    /// Weighted callee-save overhead.
    pub callee_save: f64,
    /// Weighted shuffle overhead.
    pub shuffle: f64,
    /// Total allocation wall-clock microseconds.
    pub micros: u64,
}

impl ProgramSummary {
    /// Total weighted overhead operations.
    pub fn total(&self) -> f64 {
        self.spill + self.caller_save + self.callee_save + self.shuffle
    }
}

/// A function whose allocation failed and fell back to the degraded
/// spill-everything allocation (see [`crate::degraded_allocation`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedInfo {
    /// The function.
    pub func: String,
    /// The [`crate::AllocError`] that triggered the fallback, rendered.
    pub reason: String,
}

/// One telemetry event. Serializes as a flat JSON object carrying an
/// `"event"` tag (`"phase"`, `"round"`, `"decision"`, `"spill"`,
/// `"degraded"`, `"func"`, `"program"`) alongside the variant's fields.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocEvent {
    /// A [`PhaseSpan`].
    Phase(PhaseSpan),
    /// A [`RoundStats`].
    Round(RoundStats),
    /// A [`Decision`].
    Decision(Decision),
    /// A [`SpillStats`].
    Spill(SpillStats),
    /// A [`DegradedInfo`].
    Degraded(DegradedInfo),
    /// A [`FuncSummary`].
    Func(FuncSummary),
    /// A [`ProgramSummary`].
    Program(ProgramSummary),
}

impl AllocEvent {
    /// The `"event"` tag of the serialized form.
    pub fn tag(&self) -> &'static str {
        match self {
            AllocEvent::Phase(_) => "phase",
            AllocEvent::Round(_) => "round",
            AllocEvent::Decision(_) => "decision",
            AllocEvent::Spill(_) => "spill",
            AllocEvent::Degraded(_) => "degraded",
            AllocEvent::Func(_) => "func",
            AllocEvent::Program(_) => "program",
        }
    }

    /// This event with wall-clock fields zeroed — everything else the
    /// allocator emits is deterministic, so normalized streams compare
    /// equal across runs.
    pub fn normalized(mut self) -> AllocEvent {
        match &mut self {
            AllocEvent::Phase(e) => e.micros = 0,
            AllocEvent::Program(e) => e.micros = 0,
            _ => {}
        }
        self
    }
}

impl Serialize for AllocEvent {
    fn to_value(&self) -> Value {
        let inner = match self {
            AllocEvent::Phase(e) => e.to_value(),
            AllocEvent::Round(e) => e.to_value(),
            AllocEvent::Decision(e) => e.to_value(),
            AllocEvent::Spill(e) => e.to_value(),
            AllocEvent::Degraded(e) => e.to_value(),
            AllocEvent::Func(e) => e.to_value(),
            AllocEvent::Program(e) => e.to_value(),
        };
        match inner {
            Value::Obj(mut fields) => {
                fields.insert(0, ("event".to_string(), Value::Str(self.tag().to_string())));
                Value::Obj(fields)
            }
            other => other,
        }
    }
}

impl Deserialize for AllocEvent {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let tag = value
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing("event"))?;
        match tag {
            "phase" => PhaseSpan::from_value(value).map(AllocEvent::Phase),
            "round" => RoundStats::from_value(value).map(AllocEvent::Round),
            "decision" => Decision::from_value(value).map(AllocEvent::Decision),
            "spill" => SpillStats::from_value(value).map(AllocEvent::Spill),
            "degraded" => DegradedInfo::from_value(value).map(AllocEvent::Degraded),
            "func" => FuncSummary::from_value(value).map(AllocEvent::Func),
            "program" => ProgramSummary::from_value(value).map(AllocEvent::Program),
            other => Err(Error::new(format!("unknown event type `{other}`"))),
        }
    }
}

/// Receives allocation telemetry.
///
/// Instrumentation sites gate all event construction — including
/// `Instant::now()` calls — on [`AllocSink::enabled`], so a disabled sink
/// costs one branch per site and nothing else.
pub trait AllocSink {
    /// Whether instrumentation sites should construct and emit events.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. Never called when [`AllocSink::enabled`] is
    /// false.
    fn emit(&mut self, event: AllocEvent);
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl AllocSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: AllocEvent) {}
}

/// Collects events in memory (for tests and ad-hoc inspection).
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The events received, in emission order.
    pub events: Vec<AllocEvent>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// The recorded events with wall-clock fields zeroed (see
    /// [`AllocEvent::normalized`]).
    pub fn normalized(&self) -> Vec<AllocEvent> {
        self.events
            .iter()
            .cloned()
            .map(AllocEvent::normalized)
            .collect()
    }
}

impl AllocSink for RecordingSink {
    fn emit(&mut self, event: AllocEvent) {
        self.events.push(event);
    }
}

/// Streams events as JSON Lines — one compact JSON object per event.
///
/// Telemetry must never abort an allocation, so [`JsonlSink::emit`] does
/// not return write failures; it counts them ([`JsonlSink::write_errors`])
/// and [`JsonlSink::finish`] reports how many events were lost.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    write_errors: usize,
}

impl JsonlSink<BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL file sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            writer: BufWriter::new(std::fs::File::create(path)?),
            write_errors: 0,
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            write_errors: 0,
        }
    }

    /// How many events failed to write so far.
    pub fn write_errors(&self) -> usize {
        self.write_errors
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Fails if the flush fails, or if any earlier [`JsonlSink::emit`]
    /// dropped events on a write error — the error message says how many.
    pub fn finish(mut self) -> io::Result<W> {
        self.writer.flush()?;
        if self.write_errors > 0 {
            return Err(io::Error::other(format!(
                "{} telemetry event(s) were lost to write errors",
                self.write_errors
            )));
        }
        Ok(self.writer)
    }
}

impl<W: Write> AllocSink for JsonlSink<W> {
    fn emit(&mut self, event: AllocEvent) {
        if writeln!(self.writer, "{}", event.to_json()).is_err() {
            self.write_errors += 1;
        }
    }
}

/// Parses a JSONL event stream (ignoring blank lines).
pub fn parse_jsonl(text: &str) -> Result<Vec<AllocEvent>, Error> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(AllocEvent::from_json)
        .collect()
}

/// The tracing context threaded through one round of bank allocation: the
/// sink, an optional [`MetricsRegistry`], and the function/round
/// coordinates every event carries.
///
/// [`MetricsRegistry`]: crate::metrics::MetricsRegistry
pub struct TraceCtx<'a> {
    sink: &'a mut dyn AllocSink,
    metrics: Option<&'a mut crate::metrics::MetricsRegistry>,
    func: &'a str,
    round: u32,
}

impl<'a> TraceCtx<'a> {
    /// Binds a sink to one function and round, with no metrics.
    pub fn new(sink: &'a mut dyn AllocSink, func: &'a str, round: u32) -> Self {
        TraceCtx {
            sink,
            metrics: None,
            func,
            round,
        }
    }

    /// Binds a sink *and* a metrics registry to one function and round.
    /// Spans then both emit [`PhaseSpan`] events (if the sink is enabled)
    /// and feed the per-phase wall-clock histograms (if the registry is).
    pub fn with_metrics(
        sink: &'a mut dyn AllocSink,
        metrics: &'a mut crate::metrics::MetricsRegistry,
        func: &'a str,
        round: u32,
    ) -> Self {
        TraceCtx {
            sink,
            metrics: Some(metrics),
            func,
            round,
        }
    }

    /// Whether instrumentation sites should construct events.
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Whether metrics are being collected.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.as_ref().is_some_and(|m| m.enabled())
    }

    /// The metrics registry, if one is attached.
    pub fn metrics(&mut self) -> Option<&mut crate::metrics::MetricsRegistry> {
        self.metrics.as_deref_mut()
    }

    /// Adds `n` to a metrics counter (no-op without an enabled registry).
    pub fn count(&mut self, name: &'static str, n: u64) {
        if let Some(m) = self.metrics.as_deref_mut() {
            m.add(name, n);
        }
    }

    /// Records a metrics histogram observation (no-op without an enabled
    /// registry).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if let Some(m) = self.metrics.as_deref_mut() {
            m.observe(name, value);
        }
    }

    /// The function being allocated.
    pub fn func(&self) -> &str {
        self.func
    }

    /// The current spill round.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Forwards one event to the sink.
    pub fn emit(&mut self, event: AllocEvent) {
        self.sink.emit(event);
    }

    /// Starts a wall-clock span iff the sink or the metrics registry wants
    /// it.
    pub fn span(&self) -> Option<Instant> {
        (self.sink.enabled() || self.metrics_enabled()).then(Instant::now)
    }

    /// Ends a span started by [`TraceCtx::span`]: emits a [`PhaseSpan`]
    /// through an enabled sink and observes the phase's wall-clock
    /// histogram in an enabled registry.
    pub fn span_end(&mut self, start: Option<Instant>, phase: Phase) {
        let Some(t) = start else { return };
        let micros = t.elapsed().as_micros() as u64;
        if self.sink.enabled() {
            self.sink.emit(AllocEvent::Phase(PhaseSpan {
                func: self.func.to_string(),
                round: self.round,
                phase: phase.name().to_string(),
                micros,
            }));
        }
        if let Some(m) = self.metrics.as_deref_mut() {
            m.observe(phase.metric_name(), micros);
        }
    }
}

/// Starts a wall-clock span iff the sink wants events.
pub fn span_start(sink: &dyn AllocSink) -> Option<Instant> {
    sink.enabled().then(Instant::now)
}

/// Ends a span started by [`span_start`], emitting a [`PhaseSpan`].
pub fn span_end(
    sink: &mut dyn AllocSink,
    start: Option<Instant>,
    func: &str,
    round: u32,
    phase: Phase,
) {
    if let Some(t) = start {
        sink.emit(AllocEvent::Phase(PhaseSpan {
            func: func.to_string(),
            round,
            phase: phase.name().to_string(),
            micros: t.elapsed().as_micros() as u64,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_decision() -> Decision {
        Decision {
            func: "main".into(),
            round: 1,
            node: 3,
            class: "int".into(),
            benefit_caller: 12.5,
            benefit_callee: -4.0,
            bs_key: "benefit_delta".into(),
            bs_value: Some(16.5),
            pref_votes: 2,
            pref_forced: false,
            loc: "$t1".into(),
            reason: "colored".into(),
        }
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let events = vec![
            AllocEvent::Phase(PhaseSpan {
                func: "f".into(),
                round: 2,
                phase: Phase::Simplify.name().into(),
                micros: 41,
            }),
            AllocEvent::Round(RoundStats {
                func: "f".into(),
                round: 2,
                nodes: 10,
                edges: 21,
                max_degree: 7,
            }),
            AllocEvent::Decision(sample_decision()),
            AllocEvent::Spill(SpillStats {
                func: "f".into(),
                round: 2,
                spilled: 3,
                inserted: 9,
                temps: 6,
            }),
            AllocEvent::Degraded(DegradedInfo {
                func: "f".into(),
                reason: "allocation of `f` did not converge in 60 rounds".into(),
            }),
            AllocEvent::Func(FuncSummary {
                func: "f".into(),
                rounds: 2,
                spilled_ranges: 3,
                callee_regs_used: 1,
                spill: 18.0,
                caller_save: 4.0,
                callee_save: 2.0,
                shuffle: 0.0,
            }),
            AllocEvent::Program(ProgramSummary {
                config: "SC+BS+PR".into(),
                funcs: 1,
                spill: 18.0,
                caller_save: 4.0,
                callee_save: 2.0,
                shuffle: 0.0,
                micros: 1234,
            }),
        ];
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let parsed = parse_jsonl(&text).expect("events parse back");
        assert_eq!(parsed, events);
    }

    #[test]
    fn serialized_events_carry_the_tag_first() {
        let e = AllocEvent::Decision(sample_decision());
        assert!(e.to_json().starts_with("{\"event\":\"decision\""));
        assert_eq!(e.tag(), "decision");
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(AllocEvent::from_json("{\"event\":\"nope\"}").is_err());
        assert!(AllocEvent::from_json("{\"round\":1}").is_err());
    }

    #[test]
    fn normalization_zeroes_only_wall_clock() {
        let phase = AllocEvent::Phase(PhaseSpan {
            func: "f".into(),
            round: 1,
            phase: "build".into(),
            micros: 99,
        });
        match phase.clone().normalized() {
            AllocEvent::Phase(p) => assert_eq!(p.micros, 0),
            _ => unreachable!(),
        }
        let d = AllocEvent::Decision(sample_decision());
        assert_eq!(d.clone().normalized(), d);
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        assert!(span_start(&sink).is_none());
    }

    #[test]
    fn recording_sink_collects_in_order() {
        let mut sink = RecordingSink::new();
        assert!(sink.enabled());
        let start = span_start(&sink);
        span_end(&mut sink, start, "f", 1, Phase::Build);
        sink.emit(AllocEvent::Decision(sample_decision()));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].tag(), "phase");
        assert_eq!(sink.events[1].tag(), "decision");
        let normalized = sink.normalized();
        match &normalized[0] {
            AllocEvent::Phase(p) => assert_eq!(p.micros, 0),
            _ => unreachable!(),
        }
    }

    /// A writer that fails after `ok_writes` successful writes.
    #[derive(Debug)]
    struct FlakyWriter {
        ok_writes: usize,
        buf: Vec<u8>,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.ok_writes -= 1;
            self.buf.extend_from_slice(data);
            Ok(data.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_counts_and_reports_write_errors() {
        // One `emit` is two writes (payload + newline): allow exactly the
        // first event through, then fail.
        let mut sink = JsonlSink::new(FlakyWriter {
            ok_writes: 2,
            buf: Vec::new(),
        });
        sink.emit(AllocEvent::Decision(sample_decision())); // succeeds
        sink.emit(AllocEvent::Decision(sample_decision())); // fails
        sink.emit(AllocEvent::Decision(sample_decision())); // fails
        assert_eq!(sink.write_errors(), 2);
        let err = sink.finish().expect_err("lost events surface at finish");
        assert!(
            err.to_string().contains("2 telemetry event(s)"),
            "error names the loss count: {err}"
        );
    }

    #[test]
    fn jsonl_sink_finish_is_clean_without_errors() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(AllocEvent::Decision(sample_decision()));
        assert_eq!(sink.write_errors(), 0);
        assert!(sink.finish().is_ok());
    }

    #[test]
    fn trace_ctx_spans_feed_metrics_without_a_sink() {
        let mut sink = NoopSink;
        let mut metrics = crate::metrics::MetricsRegistry::new();
        let mut tr = TraceCtx::with_metrics(&mut sink, &mut metrics, "f", 1);
        assert!(!tr.enabled());
        assert!(tr.metrics_enabled());
        let span = tr.span();
        assert!(span.is_some(), "metrics alone keep spans alive");
        tr.span_end(span, Phase::Build);
        tr.count("c", 2);
        tr.observe("h", 5);
        assert_eq!(
            metrics
                .histogram(Phase::Build.metric_name())
                .map(|h| h.count()),
            Some(1)
        );
        assert_eq!(metrics.counter("c"), 2);
    }

    #[test]
    fn trace_ctx_span_is_none_when_both_layers_are_off() {
        let mut sink = NoopSink;
        let mut metrics = crate::metrics::MetricsRegistry::disabled();
        let tr = TraceCtx::with_metrics(&mut sink, &mut metrics, "f", 1);
        assert!(tr.span().is_none());
        let tr2 = TraceCtx::new(&mut sink, "f", 1);
        assert!(tr2.span().is_none());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(AllocEvent::Decision(sample_decision()));
        sink.emit(AllocEvent::Round(RoundStats {
            func: "g".into(),
            round: 1,
            nodes: 2,
            edges: 1,
            max_degree: 1,
        }));
        let bytes = sink.finish().expect("writer flushes");
        let text = String::from_utf8(bytes).expect("output is utf-8");
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_jsonl(&text).expect("lines parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], AllocEvent::Decision(sample_decision()));
    }
}
