//! Chrome Trace Event Format export for driver [`Timeline`]s.
//!
//! The output is the JSON-object form of the [Trace Event Format] that
//! Perfetto and `chrome://tracing` load directly: a `traceEvents` array
//! plus `displayTimeUnit`. The mapping is:
//!
//! * one **lane** (a `tid` under one shared `pid`) per pool worker, named
//!   `worker N` via `thread_name` metadata events, plus a `driver` lane
//!   for the merge span;
//! * [`TimelineEvent::Span`] → a complete event (`"ph": "X"`) with the
//!   span kind as its category — phase spans nest inside their job span
//!   visually because Chrome nests `X` events on one thread by time range;
//! * [`TimelineEvent::Instant`] → a thread-scoped instant
//!   (`"ph": "i", "s": "t"`) — one per steal or failed sweep;
//! * [`TimelineEvent::Counter`] → a counter sample (`"ph": "C"`) — one
//!   series per queue-depth counter name.
//!
//! Timestamps are the timeline's native microseconds, which is exactly the
//! unit the format's `ts`/`dur` fields expect.
//!
//! Everything renders through the vendored [`serde::json::Value`], so the
//! output is deterministic for a given timeline: same events, same bytes.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde::json::Value;

use crate::driver::timeline::{Timeline, TimelineEvent};

/// The process id every lane shares (the format wants one; the driver is
/// one process).
const PID: i64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The name a lane renders under: `worker N` for pool lanes, `driver` for
/// the lane one past the last worker (where the merge span lives), and
/// `service` for anything beyond that (the batch service's request-scoped
/// queue/service/reply lane).
pub fn lane_name(workers: usize, tid: u32) -> String {
    if (tid as usize) < workers {
        format!("worker {tid}")
    } else if tid as usize == workers {
        "driver".to_string()
    } else {
        "service".to_string()
    }
}

fn metadata_event(workers: usize, tid: u32) -> Value {
    obj(vec![
        ("name", Value::Str("thread_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::Int(PID)),
        ("tid", Value::Int(tid as i64)),
        (
            "args",
            obj(vec![("name", Value::Str(lane_name(workers, tid)))]),
        ),
    ])
}

fn event_value(event: &TimelineEvent) -> Value {
    match event {
        TimelineEvent::Span {
            tid,
            kind,
            name,
            detail,
            start_us,
            dur_us,
        } => {
            let mut fields = vec![
                ("name", Value::Str(name.clone())),
                ("cat", Value::Str(kind.name().to_string())),
                ("ph", Value::Str("X".to_string())),
                ("pid", Value::Int(PID)),
                ("tid", Value::Int(*tid as i64)),
                ("ts", Value::Int(*start_us as i64)),
                ("dur", Value::Int(*dur_us as i64)),
            ];
            if let Some(detail) = detail {
                fields.push(("args", obj(vec![("detail", Value::Str(detail.clone()))])));
            }
            obj(fields)
        }
        TimelineEvent::Instant {
            tid,
            kind,
            name,
            ts_us,
        } => obj(vec![
            ("name", Value::Str(name.clone())),
            ("cat", Value::Str(kind.name().to_string())),
            ("ph", Value::Str("i".to_string())),
            ("s", Value::Str("t".to_string())),
            ("pid", Value::Int(PID)),
            ("tid", Value::Int(*tid as i64)),
            ("ts", Value::Int(*ts_us as i64)),
        ]),
        TimelineEvent::Counter {
            tid,
            name,
            ts_us,
            value,
        } => obj(vec![
            ("name", Value::Str(name.clone())),
            ("ph", Value::Str("C".to_string())),
            ("pid", Value::Int(PID)),
            ("tid", Value::Int(*tid as i64)),
            ("ts", Value::Int(*ts_us as i64)),
            ("args", obj(vec![("value", Value::Int(*value as i64))])),
        ]),
    }
}

/// Renders a timeline as a Chrome Trace Event Format JSON value: lane
/// `thread_name` metadata first (every lane that recorded anything, plus
/// every worker lane `0..workers` even if it recorded nothing — a lane per
/// worker is part of the export contract), then the events in timeline
/// order.
pub fn to_chrome_trace(timeline: &Timeline) -> Value {
    let mut lane_ids = timeline.lane_ids();
    for tid in 0..timeline.workers as u32 {
        if !lane_ids.contains(&tid) {
            lane_ids.push(tid);
        }
    }
    lane_ids.sort_unstable();
    let mut events: Vec<Value> = lane_ids
        .iter()
        .map(|&tid| metadata_event(timeline.workers, tid))
        .collect();
    events.extend(timeline.events.iter().map(event_value));
    obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
}

/// [`to_chrome_trace`] rendered to a JSON string.
pub fn to_chrome_trace_json(timeline: &Timeline) -> String {
    to_chrome_trace(timeline).to_json()
}

/// Counts the `thread_name` lanes declared in a parsed Chrome trace —
/// what the `ccra-eval` `timeline` binary (and CI) validate after a
/// round-trip through the file.
pub fn lane_count(trace: &Value) -> usize {
    let Some(Value::Arr(events)) = trace.get("traceEvents") else {
        return 0;
    };
    events
        .iter()
        .filter(|e| {
            matches!(e.get("ph"), Some(Value::Str(ph)) if ph == "M")
                && matches!(e.get("name"), Some(Value::Str(n)) if n == "thread_name")
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::timeline::{InstantKind, SpanKind};

    fn sample_timeline() -> Timeline {
        Timeline {
            workers: 2,
            events: vec![
                TimelineEvent::Span {
                    tid: 0,
                    kind: SpanKind::Job,
                    name: "f".into(),
                    detail: None,
                    start_us: 10,
                    dur_us: 100,
                },
                TimelineEvent::Span {
                    tid: 0,
                    kind: SpanKind::Phase,
                    name: "build".into(),
                    detail: Some("round 1".into()),
                    start_us: 12,
                    dur_us: 30,
                },
                TimelineEvent::Instant {
                    tid: 1,
                    kind: InstantKind::Steal,
                    name: "steal <- w0".into(),
                    ts_us: 40,
                },
                TimelineEvent::Counter {
                    tid: 0,
                    name: "queue depth w0".into(),
                    ts_us: 5,
                    value: 3,
                },
                TimelineEvent::Span {
                    tid: 2,
                    kind: SpanKind::Merge,
                    name: "merge".into(),
                    detail: None,
                    start_us: 120,
                    dur_us: 8,
                },
            ],
        }
    }

    #[test]
    fn export_parses_back_with_one_lane_per_worker_plus_driver() {
        let json = to_chrome_trace_json(&sample_timeline());
        let parsed = serde::json::parse(&json).expect("chrome trace JSON parses");
        assert_eq!(lane_count(&parsed), 3, "2 workers + driver lane");
        let Some(Value::Arr(events)) = parsed.get("traceEvents") else {
            unreachable!("traceEvents array")
        };
        // 3 metadata + 5 timeline events.
        assert_eq!(events.len(), 8);
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
    }

    #[test]
    fn spans_render_as_complete_events_with_category_and_args() {
        let trace = to_chrome_trace(&sample_timeline());
        let Some(Value::Arr(events)) = trace.get("traceEvents") else {
            unreachable!()
        };
        let phase = events
            .iter()
            .find(|e| matches!(e.get("cat"), Some(Value::Str(c)) if c == "phase"))
            .expect("phase span exported");
        assert_eq!(phase.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(phase.get("ts").and_then(Value::as_f64), Some(12.0));
        assert_eq!(phase.get("dur").and_then(Value::as_f64), Some(30.0));
        assert_eq!(
            phase
                .get("args")
                .and_then(|a| a.get("detail"))
                .and_then(Value::as_str),
            Some("round 1")
        );
        // A phase span nests inside its job span: same tid, contained
        // time range.
        let job = events
            .iter()
            .find(|e| matches!(e.get("cat"), Some(Value::Str(c)) if c == "job"))
            .expect("job span exported");
        assert_eq!(job.get("tid"), phase.get("tid"));
        let (jts, jdur) = (
            job.get("ts").and_then(Value::as_f64).unwrap(),
            job.get("dur").and_then(Value::as_f64).unwrap(),
        );
        let (pts, pdur) = (12.0, 30.0);
        assert!(jts <= pts && pts + pdur <= jts + jdur);
    }

    #[test]
    fn instants_and_counters_render_their_phases() {
        let trace = to_chrome_trace(&sample_timeline());
        let Some(Value::Arr(events)) = trace.get("traceEvents") else {
            unreachable!()
        };
        let steal = events
            .iter()
            .find(|e| matches!(e.get("cat"), Some(Value::Str(c)) if c == "steal"))
            .expect("steal instant exported");
        assert_eq!(steal.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(steal.get("s").and_then(Value::as_str), Some("t"));
        let counter = events
            .iter()
            .find(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "C"))
            .expect("counter sample exported");
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn empty_worker_lanes_still_get_metadata() {
        let timeline = Timeline {
            workers: 4,
            events: vec![TimelineEvent::Span {
                tid: 0,
                kind: SpanKind::Job,
                name: "only one lane recorded".into(),
                detail: None,
                start_us: 0,
                dur_us: 1,
            }],
        };
        let trace = to_chrome_trace(&timeline);
        assert_eq!(lane_count(&trace), 4);
        assert_eq!(lane_name(4, 3), "worker 3");
        assert_eq!(lane_name(4, 4), "driver");
        assert_eq!(lane_name(4, 5), "service");
        assert_eq!(lane_name(1, 2), "service");
    }

    #[test]
    fn empty_timeline_exports_a_valid_self_reimportable_trace() {
        // A disabled collector yields Timeline::empty(): zero workers,
        // zero events. The export must still be a loadable trace — an
        // empty traceEvents array, not missing keys or invalid JSON.
        let json = to_chrome_trace_json(&Timeline::empty());
        let parsed = serde::json::parse(&json).expect("empty trace parses back");
        assert_eq!(lane_count(&parsed), 0, "no lanes recorded, none declared");
        let Some(Value::Arr(events)) = parsed.get("traceEvents") else {
            panic!("traceEvents array present even when empty");
        };
        assert!(events.is_empty());
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
    }

    #[test]
    fn zero_length_spans_survive_the_roundtrip() {
        // A span that starts and ends within one microsecond has dur 0 —
        // legal in the format (a degenerate X event) and must not be
        // dropped, since phase spans on fast functions really do measure
        // 0 us.
        let timeline = Timeline {
            workers: 1,
            events: vec![
                TimelineEvent::Span {
                    tid: 0,
                    kind: SpanKind::Phase,
                    name: "rewrite".into(),
                    detail: None,
                    start_us: 7,
                    dur_us: 0,
                },
                TimelineEvent::Instant {
                    tid: 0,
                    kind: InstantKind::Steal,
                    name: "at epoch".into(),
                    ts_us: 0,
                },
            ],
        };
        let parsed =
            serde::json::parse(&to_chrome_trace_json(&timeline)).expect("trace parses back");
        let Some(Value::Arr(events)) = parsed.get("traceEvents") else {
            unreachable!()
        };
        let span = events
            .iter()
            .find(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "X"))
            .expect("zero-length span exported");
        assert_eq!(span.get("dur").and_then(Value::as_i64), Some(0));
        assert_eq!(span.get("ts").and_then(Value::as_i64), Some(7));
        let instant = events
            .iter()
            .find(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "i"))
            .expect("epoch instant exported");
        assert_eq!(instant.get("ts").and_then(Value::as_i64), Some(0));
    }

    #[test]
    fn reexport_of_a_parsed_trace_is_byte_identical() {
        // Determinism contract: same timeline, same bytes — so a
        // parse → re-render cycle of the export changes nothing. This is
        // what lets CI diff trace artifacts across runs.
        let json = to_chrome_trace_json(&sample_timeline());
        let parsed = serde::json::parse(&json).expect("parses");
        assert_eq!(parsed.to_json(), json);
        let again = serde::json::parse(&to_chrome_trace_json(&sample_timeline())).expect("parses");
        assert_eq!(again.to_json(), json);
    }
}
