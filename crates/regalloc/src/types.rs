//! Allocator configuration and result types.

use ccra_machine::PhysReg;
use std::ops::{Add, AddAssign};

/// Where a live range ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register.
    Reg(PhysReg),
    /// Memory (a spill slot).
    Spilled,
}

impl Loc {
    /// The physical register, if any.
    pub fn reg(self) -> Option<PhysReg> {
        match self {
            Loc::Reg(r) => Some(r),
            Loc::Spilled => None,
        }
    }

    /// Whether the live range was spilled to memory.
    pub fn is_spilled(self) -> bool {
        matches!(self, Loc::Spilled)
    }
}

/// Which coloring algorithm drives the allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// Chaitin-style coloring: simplify, spill when blocked (Section 3.1).
    Chaitin,
    /// Optimistic (Briggs) coloring: never spill during simplification;
    /// spill only when color assignment actually fails (Section 8).
    Optimistic,
    /// Priority-based (Chow, without live-range splitting) coloring with
    /// the given color ordering (Section 9).
    Priority(PriorityOrdering),
    /// The CBH (Chaitin/Briggs-Hierarchical) call-cost model: call-crossing
    /// live ranges interfere with all caller-save registers, and each
    /// callee-save register is a spillable whole-function live range
    /// (Section 10).
    Cbh,
}

/// Color orderings for priority-based coloring (Section 9.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityOrdering {
    /// Unconstrained live ranges are simplified away in arbitrary order and
    /// colored last; constrained ones are colored in priority order.
    RemovingUnconstrained,
    /// Like `RemovingUnconstrained`, but the unconstrained live ranges are
    /// also ordered by priority among themselves.
    SortingUnconstrained,
    /// Every live range is colored in pure priority order. The ordering the
    /// paper adopts for its priority-based comparison.
    Sorting,
}

/// How callee-save cost is attributed when deciding whether live ranges are
/// worth a callee-save register (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalleeCostModel {
    /// The first live range to use a callee-save register pays the whole
    /// save/restore cost; later users ride for free.
    FirstUser,
    /// The cost is shared by all live ranges packed into the register: at
    /// the end of color assignment, the share set δ(r) is spilled as a whole
    /// iff its summed spill cost is below the register's callee-save cost.
    /// The model the paper finds superior.
    Shared,
}

/// The simplification key of benefit-driven simplification (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BsKey {
    /// `max(benefit_caller, benefit_callee)` — the priority-style key the
    /// paper rejects for Chaitin-style coloring.
    MaxBenefit,
    /// `|benefit_caller − benefit_callee|` when both benefits are positive,
    /// else `max(benefit_caller, benefit_callee)` — the key the paper
    /// adopts: what matters is the penalty of getting the *wrong kind* of
    /// register.
    BenefitDelta,
}

/// Full configuration of one register-allocation run.
///
/// # Example
///
/// ```
/// use ccra_regalloc::{AllocatorConfig, AllocatorKind};
///
/// let improved = AllocatorConfig::improved();
/// assert_eq!(improved.kind, AllocatorKind::Chaitin);
/// assert!(improved.storage_class && improved.preference);
/// assert!(improved.benefit_simplify.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocatorConfig {
    /// The coloring algorithm.
    pub kind: AllocatorKind,
    /// Storage-class analysis (Section 4): spill live ranges whose register
    /// residence would cost more than their spill cost.
    pub storage_class: bool,
    /// Callee-save cost attribution used by storage-class analysis.
    pub callee_cost_model: CalleeCostModel,
    /// Benefit-driven simplification (Section 5) with the given key.
    pub benefit_simplify: Option<BsKey>,
    /// Preference decision (Section 6): pre-resolve competition for
    /// callee-save registers at frequent call sites.
    pub preference: bool,
    /// Update the interference graph incrementally after spill rounds
    /// instead of rebuilding it (the *graph reconstruction* phase of
    /// Figure 1; a compile-time optimization — see
    /// [`crate::reconstruct_context`]).
    pub incremental_reconstruction: bool,
    /// Iteration guard on the spill loop: after this many build→color→spill
    /// rounds the pipeline stops with
    /// [`crate::AllocError::SpillRoundsExceeded`] instead of livelocking on
    /// an adversarial input.
    pub max_spill_rounds: u32,
}

impl AllocatorConfig {
    /// Default spill-round cap; exceeded only by pathological inputs.
    pub const DEFAULT_MAX_SPILL_ROUNDS: u32 = 60;
    /// The base Chaitin-style allocator with the simple cost model of
    /// Section 3.1 (the denominator of every ratio in the paper).
    pub fn base() -> Self {
        AllocatorConfig {
            kind: AllocatorKind::Chaitin,
            storage_class: false,
            callee_cost_model: CalleeCostModel::Shared,
            benefit_simplify: None,
            preference: false,
            incremental_reconstruction: false,
            max_spill_rounds: Self::DEFAULT_MAX_SPILL_ROUNDS,
        }
    }

    /// Improved Chaitin-style coloring: SC + BS + PR, the paper's
    /// contribution (Sections 4–6).
    pub fn improved() -> Self {
        AllocatorConfig {
            kind: AllocatorKind::Chaitin,
            storage_class: true,
            callee_cost_model: CalleeCostModel::Shared,
            benefit_simplify: Some(BsKey::BenefitDelta),
            preference: true,
            incremental_reconstruction: false,
            max_spill_rounds: Self::DEFAULT_MAX_SPILL_ROUNDS,
        }
    }

    /// Optimistic (Briggs) coloring on the base cost model.
    pub fn optimistic() -> Self {
        AllocatorConfig {
            kind: AllocatorKind::Optimistic,
            ..Self::base()
        }
    }

    /// Optimistic coloring combined with all three improvements (Section 8).
    pub fn improved_optimistic() -> Self {
        AllocatorConfig {
            kind: AllocatorKind::Optimistic,
            ..Self::improved()
        }
    }

    /// Priority-based coloring (Chow, no splitting) with the given ordering.
    pub fn priority(ordering: PriorityOrdering) -> Self {
        AllocatorConfig {
            kind: AllocatorKind::Priority(ordering),
            ..Self::base()
        }
    }

    /// The CBH call-cost model (Section 10).
    pub fn cbh() -> Self {
        AllocatorConfig {
            kind: AllocatorKind::Cbh,
            ..Self::base()
        }
    }

    /// The base allocator with a chosen subset of the three improvements —
    /// the combinations plotted in Figure 6.
    pub fn with_improvements(sc: bool, bs: bool, pr: bool) -> Self {
        AllocatorConfig {
            kind: AllocatorKind::Chaitin,
            storage_class: sc,
            callee_cost_model: CalleeCostModel::Shared,
            benefit_simplify: if bs { Some(BsKey::BenefitDelta) } else { None },
            preference: pr,
            incremental_reconstruction: false,
            max_spill_rounds: Self::DEFAULT_MAX_SPILL_ROUNDS,
        }
    }

    /// Returns this configuration with incremental graph reconstruction
    /// enabled.
    pub fn with_reconstruction(self) -> Self {
        AllocatorConfig {
            incremental_reconstruction: true,
            ..self
        }
    }

    /// Returns this configuration with the given spill-round cap.
    pub fn with_max_spill_rounds(self, rounds: u32) -> Self {
        AllocatorConfig {
            max_spill_rounds: rounds,
            ..self
        }
    }

    /// A short label like `SC+BS+PR` for tables.
    pub fn label(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        match self.kind {
            AllocatorKind::Chaitin => {}
            AllocatorKind::Optimistic => parts.push("OPT"),
            AllocatorKind::Priority(_) => parts.push("PRIO"),
            AllocatorKind::Cbh => parts.push("CBH"),
        }
        if self.storage_class {
            parts.push("SC");
        }
        if self.benefit_simplify.is_some() {
            parts.push("BS");
        }
        if self.preference {
            parts.push("PR");
        }
        if parts.is_empty() {
            "base".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// Weighted overhead-operation counts, split into the paper's components
/// (Section 3): spill, caller-save, callee-save, and shuffle cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Overhead {
    /// Spill loads/stores of memory-resident live ranges.
    pub spill: f64,
    /// Save/restore pairs around calls for caller-save registers.
    pub caller_save: f64,
    /// Entry/exit save/restore pairs for callee-save registers.
    pub callee_save: f64,
    /// Moves between differently-located copy-related live ranges.
    pub shuffle: f64,
}

impl Overhead {
    /// An all-zero overhead.
    pub fn zero() -> Self {
        Overhead::default()
    }

    /// Total weighted overhead operations.
    pub fn total(&self) -> f64 {
        self.spill + self.caller_save + self.callee_save + self.shuffle
    }

    /// The call-cost component (caller-save + callee-save).
    pub fn call_cost(&self) -> f64 {
        self.caller_save + self.callee_save
    }
}

impl Add for Overhead {
    type Output = Overhead;
    fn add(self, rhs: Overhead) -> Overhead {
        Overhead {
            spill: self.spill + rhs.spill,
            caller_save: self.caller_save + rhs.caller_save,
            callee_save: self.callee_save + rhs.callee_save,
            shuffle: self.shuffle + rhs.shuffle,
        }
    }
}

impl AddAssign for Overhead {
    fn add_assign(&mut self, rhs: Overhead) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for Overhead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spill={:.0} caller={:.0} callee={:.0} shuffle={:.0} total={:.0}",
            self.spill,
            self.caller_save,
            self.callee_save,
            self.shuffle,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert_eq!(AllocatorConfig::base().label(), "base");
        assert_eq!(AllocatorConfig::improved().label(), "SC+BS+PR");
        assert_eq!(AllocatorConfig::optimistic().label(), "OPT");
        assert_eq!(
            AllocatorConfig::improved_optimistic().label(),
            "OPT+SC+BS+PR"
        );
        assert_eq!(AllocatorConfig::cbh().label(), "CBH");
        assert_eq!(
            AllocatorConfig::priority(PriorityOrdering::Sorting).label(),
            "PRIO"
        );
        assert_eq!(
            AllocatorConfig::with_improvements(true, false, true).label(),
            "SC+PR"
        );
        assert_eq!(AllocatorConfig::default(), AllocatorConfig::base());
    }

    #[test]
    fn overhead_arithmetic() {
        let a = Overhead {
            spill: 1.0,
            caller_save: 2.0,
            callee_save: 3.0,
            shuffle: 4.0,
        };
        let b = Overhead {
            spill: 10.0,
            ..Overhead::zero()
        };
        let c = a + b;
        assert_eq!(c.spill, 11.0);
        assert_eq!(c.total(), 20.0);
        assert_eq!(c.call_cost(), 5.0);
        let mut d = Overhead::zero();
        d += a;
        assert_eq!(d, a);
        assert!(format!("{a}").contains("total=10"));
    }

    #[test]
    fn loc_accessors() {
        use ccra_ir::RegClass;
        use ccra_machine::SaveKind;
        let r = PhysReg::new(RegClass::Int, SaveKind::CallerSave, 0);
        assert_eq!(Loc::Reg(r).reg(), Some(r));
        assert!(Loc::Spilled.is_spilled());
        assert!(!Loc::Reg(r).is_spilled());
        assert_eq!(Loc::Spilled.reg(), None);
    }
}
