//! The batch service's overload machinery, end to end:
//!
//! * **shed** — with the AIMD window full, `submit` returns a typed
//!   rejection carrying the job back and a retry-after hint, and the
//!   shed is counted in metrics and the admission snapshot;
//! * **deadlines** — a queued job whose deadline passes resolves as
//!   `DeadlineExpired` without running, its backdated queue wait
//!   recorded;
//! * **cancellation** — the `Queued → Running → Resolved` state machine
//!   gives exactly one outcome per request: queued jobs cancel, running
//!   jobs report `InFlight` and run to completion, resolved jobs no-op;
//! * **scheduling** — a single worker serves strictly by priority and
//!   earliest-deadline-first within a class;
//! * **timeout** — the per-job watchdog degrades overlong jobs with
//!   cause `Timeout` instead of losing them;
//! * **determinism** — with admission *and* chaos compiled in, every
//!   accepted job's allocation is identical at workers {1, 2, 4, 8}.

use std::time::{Duration, Instant};

use ccra_machine::RegisterFile;
use ccra_regalloc::driver::batch::{
    METRIC_CANCELLED, METRIC_EXPIRED, METRIC_SHED, METRIC_TIMEOUTS,
};
use ccra_regalloc::{
    AdmissionConfig, AllocatorConfig, BatchConfig, BatchJob, BatchService, BatchStatus,
    CancelOutcome, ChaosConfig, DegradeCause, Priority, RejectCause, SubmitError,
};
use ccra_workloads::{random_program, FuzzConfig};

fn fuzz_job(name: &str, seed: u64, functions: usize, stmts_per_fn: usize) -> BatchJob {
    BatchJob::new(
        name,
        random_program(
            seed,
            &FuzzConfig {
                functions,
                stmts_per_fn,
                max_loop_depth: 2,
                max_trips: 5,
            },
        ),
        RegisterFile::new(8, 6, 2, 2),
        AllocatorConfig::improved(),
    )
}

/// Long enough to keep its worker busy for the whole orchestration
/// window of every test below.
fn heavy_job(name: &str, seed: u64) -> BatchJob {
    fuzz_job(name, seed, 48, 18)
}

/// Big enough that its service time dominates clock granularity, so
/// queue-wait comparisons between jobs served back-to-back are strict.
fn medium_job(name: &str, seed: u64) -> BatchJob {
    fuzz_job(name, seed, 10, 12)
}

fn light_job(name: &str, seed: u64) -> BatchJob {
    fuzz_job(name, seed, 3, 8)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A service whose window fills sheds instead of blocking: the error
/// carries the job back with a retry hint, the shed shows up in the
/// metrics, the admission snapshot, and the `/status` document, and
/// every late completion drags the AIMD limit down while releasing its
/// window slot.
#[test]
fn full_window_sheds_with_a_retry_hint_and_late_completions_shrink_the_limit() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 8,
        admission: Some(AdmissionConfig {
            slo_us: 1, // everything is late: the limiter must only shrink
            min_limit: 1,
            max_limit: 4,
            backoff: 0.5,
            step: 1.0,
        }),
        ..BatchConfig::default()
    });
    let handle = service.handle();

    service.submit(heavy_job("blocker", 7)).expect("admitted");
    wait_until("the worker to pick up the blocker", || {
        handle.in_flight() == 1
    });
    for i in 0..3u64 {
        service
            .submit(light_job(&format!("fill-{i}"), 20 + i))
            .expect("window has room");
    }

    // The window (limit 4) is full: this submission sheds.
    let err = match service.submit(light_job("shed-me", 30)) {
        Err(e) => e,
        Ok(id) => panic!("submission {id} admitted past a full window"),
    };
    assert_eq!(err.job.name, "shed-me", "the job rides the rejection back");
    let SubmitError {
        cause: RejectCause::Shed { retry_after_us },
        ..
    } = err
    else {
        panic!("expected a shed rejection, got {err:?}");
    };
    assert!(retry_after_us > 0, "retry hint present: {retry_after_us}");

    assert_eq!(handle.metrics_snapshot().counter(METRIC_SHED), 1);
    let status = handle.status_value();
    let admission = status.get("admission").expect("admission section");
    assert!(
        matches!(
            admission.get("enabled"),
            Some(serde::json::Value::Bool(true))
        ),
        "admission reports enabled"
    );
    assert_eq!(
        admission.get("shed").and_then(serde::json::Value::as_i64),
        Some(1)
    );

    let results = service.shutdown();
    assert_eq!(results.len(), 4, "the shed job never entered the service");
    let snap = handle.admission_snapshot().expect("limiter configured");
    assert_eq!(snap.admitted, 0, "every completion released its slot");
    assert_eq!(snap.shed, 1);
    assert_eq!(snap.late, 4, "a 1us SLO makes every completion late");
    assert_eq!(snap.on_time, 0);
    assert!(
        snap.limit <= 2.0,
        "late completions shrank the limit: {}",
        snap.limit
    );
}

/// `try_submit` against a full queue (no limiter) hands the job back as
/// `QueueFull` instead of blocking.
#[test]
fn try_submit_returns_queue_full_with_the_job() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 1,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service.submit(heavy_job("blocker", 7)).expect("queue open");
    wait_until("the worker to pick up the blocker", || {
        handle.in_flight() == 1
    });
    service.submit(light_job("parked", 21)).expect("queue open");
    assert_eq!(handle.queue_depth(), 1);

    let err = service
        .try_submit(light_job("bounced", 22))
        .expect_err("the queue's only slot is taken");
    assert_eq!(err.cause, RejectCause::QueueFull);
    assert_eq!(err.job.name, "bounced");
    let results = service.shutdown();
    assert_eq!(results.len(), 2, "the bounced job never entered");
}

/// A queued job whose deadline passes before a worker reaches it
/// resolves as `DeadlineExpired`: it never runs, carries no allocation,
/// and is counted.
#[test]
fn queued_jobs_past_their_deadline_expire_without_running() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 4,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    let blocker = service.submit(heavy_job("blocker", 7)).expect("queue open");
    wait_until("the worker to pick up the blocker", || {
        handle.in_flight() == 1
    });
    let doomed = service
        .submit(light_job("doomed", 33).with_deadline(Duration::from_millis(1)))
        .expect("queue open");
    let results = service.shutdown();
    assert_eq!(results.len(), 2);
    assert_eq!(results[blocker as usize].status, BatchStatus::Ok);
    let r = &results[doomed as usize];
    assert_eq!(r.status, BatchStatus::DeadlineExpired);
    assert!(r.allocation.is_none(), "an expired job never ran");
    assert_eq!(r.micros, 0);
    assert_eq!(handle.metrics_snapshot().counter(METRIC_EXPIRED), 1);
}

/// The cancellation state machine end to end: queued → `Cancelled`
/// (idempotently), running → `InFlight` and the job still completes,
/// resolved → `Done`, never-seen ids → `Unknown`.
#[test]
fn cancel_resolves_queued_jobs_and_leaves_running_and_done_jobs_alone() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 4,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    let running = service.submit(heavy_job("running", 7)).expect("queue open");
    wait_until("the worker to pick up the job", || handle.in_flight() == 1);
    let queued = service.submit(light_job("queued", 44)).expect("queue open");

    assert_eq!(handle.cancel(running), CancelOutcome::InFlight);
    assert_eq!(handle.cancel(queued), CancelOutcome::Cancelled);
    assert_eq!(
        handle.cancel(queued),
        CancelOutcome::Cancelled,
        "cancelling twice is idempotent"
    );
    assert_eq!(handle.cancel(999), CancelOutcome::Unknown);

    let results = service.shutdown();
    assert_eq!(results.len(), 2);
    let r = &results[running as usize];
    assert_eq!(r.status, BatchStatus::Ok, "in-flight ran to completion");
    assert!(r.allocation.is_some());
    let c = &results[queued as usize];
    assert_eq!(c.status, BatchStatus::Cancelled);
    assert!(c.allocation.is_none(), "a cancelled job never ran");
    assert_eq!(
        handle.cancel(running),
        CancelOutcome::Done,
        "resolved: no-op"
    );
    assert_eq!(handle.metrics_snapshot().counter(METRIC_CANCELLED), 1);
}

/// Shutdown with a mix of queued, cancelled, and expired jobs still
/// reports every accepted id exactly once with its own outcome.
#[test]
fn shutdown_with_mixed_outcomes_drains_every_id_exactly_once() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 8,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service.submit(heavy_job("blocker", 7)).expect("queue open");
    wait_until("the worker to pick up the blocker", || {
        handle.in_flight() == 1
    });
    for i in 0..3u64 {
        service
            .submit(light_job(&format!("normal-{i}"), 50 + i))
            .expect("queue open");
    }
    let expired = service
        .submit(light_job("expired", 60).with_deadline(Duration::from_millis(1)))
        .expect("queue open");
    let cancelled = service
        .submit(light_job("cancelled", 61))
        .expect("queue open");
    assert_eq!(handle.cancel(cancelled), CancelOutcome::Cancelled);

    let results = service.shutdown();
    assert_eq!(results.len(), 6, "every accepted id reported");
    let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids, (0..6).collect::<Vec<u64>>(), "each id exactly once");
    for r in &results {
        let expect = if r.id == expired {
            BatchStatus::DeadlineExpired
        } else if r.id == cancelled {
            BatchStatus::Cancelled
        } else {
            BatchStatus::Ok
        };
        assert_eq!(r.status, expect, "job {} ({})", r.id, r.name);
    }
}

/// Queue wait as each request's trace measures it: end-to-end minus
/// service time.
fn queue_wait_us(r: &ccra_regalloc::BatchResult) -> u64 {
    let t = r.trace.as_ref().expect("tracing on by default");
    t.e2e_us - t.service_us
}

/// With one worker and a backlog, pops follow priority strictly:
/// submitted in the order background, batch, interactive, the jobs are
/// *served* interactive first and background last.
#[test]
fn a_single_worker_serves_strictly_by_priority() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 8,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service.submit(heavy_job("blocker", 7)).expect("queue open");
    wait_until("the worker to pick up the blocker", || {
        handle.in_flight() == 1
    });
    let bg = service
        .submit(medium_job("bg", 70).with_priority(Priority::Background))
        .expect("queue open");
    let mid = service
        .submit(medium_job("mid", 71).with_priority(Priority::Batch))
        .expect("queue open");
    let fg = service
        .submit(medium_job("fg", 72).with_priority(Priority::Interactive))
        .expect("queue open");

    let results = service.shutdown();
    assert_eq!(results.len(), 4);
    for r in &results {
        assert_eq!(r.status, BatchStatus::Ok, "job {}", r.name);
    }
    let (w_fg, w_mid, w_bg) = (
        queue_wait_us(&results[fg as usize]),
        queue_wait_us(&results[mid as usize]),
        queue_wait_us(&results[bg as usize]),
    );
    assert!(
        w_fg < w_mid && w_mid < w_bg,
        "served interactive → batch → background: {w_fg} / {w_mid} / {w_bg}"
    );
}

/// Within one priority class the worker serves earliest deadline first,
/// and deadline-less jobs wait behind every deadlined one.
#[test]
fn within_a_class_the_worker_serves_earliest_deadline_first() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 8,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service.submit(heavy_job("blocker", 7)).expect("queue open");
    wait_until("the worker to pick up the blocker", || {
        handle.in_flight() == 1
    });
    // Submitted in scrambled order; every deadline is far beyond the
    // test's runtime, so none expires — they only order the queue.
    let none = service.submit(medium_job("none", 80)).expect("queue open");
    let d30 = service
        .submit(medium_job("d30", 81).with_deadline(Duration::from_secs(30)))
        .expect("queue open");
    let d10 = service
        .submit(medium_job("d10", 82).with_deadline(Duration::from_secs(10)))
        .expect("queue open");
    let d20 = service
        .submit(medium_job("d20", 83).with_deadline(Duration::from_secs(20)))
        .expect("queue open");

    let results = service.shutdown();
    assert_eq!(results.len(), 5);
    for r in &results {
        assert_eq!(r.status, BatchStatus::Ok, "job {}", r.name);
    }
    let waits: Vec<u64> = [d10, d20, d30, none]
        .iter()
        .map(|&id| queue_wait_us(&results[id as usize]))
        .collect();
    assert!(
        waits.windows(2).all(|w| w[0] < w[1]),
        "served d10 → d20 → d30 → no-deadline: {waits:?}"
    );
}

/// The per-job watchdog: an overlong job comes back `Degraded` with
/// cause `Timeout` — a real (spill-heavy) allocation, never a lost id.
#[test]
fn overlong_jobs_degrade_with_cause_timeout() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 4,
        job_timeout: Some(Duration::from_micros(100)),
        ..BatchConfig::default()
    });
    let handle = service.handle();
    let id = service
        .submit(heavy_job("overlong", 7))
        .expect("queue open");
    let results = service.shutdown();
    assert_eq!(results.len(), 1);
    let r = &results[id as usize];
    let BatchStatus::Degraded { funcs, cause } = &r.status else {
        panic!("expected a timeout degrade, got {:?}", r.status);
    };
    assert!(*funcs >= 1, "at least one function hit the watchdog");
    assert_eq!(*cause, DegradeCause::Timeout);
    assert!(
        r.allocation.is_some(),
        "the degraded fallback still allocates"
    );
    assert_eq!(handle.metrics_snapshot().counter(METRIC_TIMEOUTS), 1);
}

/// The determinism quarantine with everything switched on: admission
/// limiting and chaos faults compiled in, every accepted job's status
/// and allocation are identical at workers {1, 2, 4, 8}. Chaos faults
/// are a pure function of (seed, id), so even the injected panics and
/// errors land on the same submissions in every run.
#[test]
fn allocations_are_identical_across_worker_counts_with_admission_and_chaos() {
    let run = |workers: usize| -> Vec<(u64, String, BatchStatus, _)> {
        let service = BatchService::start(BatchConfig {
            workers,
            queue_capacity: 32,
            shard_workers: 2,
            admission: Some(AdmissionConfig {
                slo_us: 10_000_000, // generous: nothing sheds, nothing is late
                ..AdmissionConfig::default()
            }),
            chaos: Some(ChaosConfig {
                seed: 42,
                panic_per_mille: 120,
                error_per_mille: 120,
                spike_per_mille: 60,
                spike_us: 100,
            }),
            ..BatchConfig::default()
        });
        for i in 0..16u64 {
            service
                .submit(fuzz_job(&format!("det-{i}"), i, 4, 10))
                .expect("a generous window admits everything");
        }
        service
            .shutdown()
            .into_iter()
            .map(|r| (r.id, r.name, r.status, r.allocation))
            .collect()
    };

    let reference = run(1);
    assert_eq!(reference.len(), 16);
    assert!(
        reference
            .iter()
            .any(|(_, _, s, _)| matches!(s, BatchStatus::Degraded { .. })),
        "the chaos rates actually injected faults into the run"
    );
    for workers in [2usize, 4, 8] {
        let got = run(workers);
        assert_eq!(got.len(), reference.len());
        for (r, g) in reference.iter().zip(&got) {
            assert_eq!(r.0, g.0, "workers={workers}: ids align");
            assert_eq!(r.1, g.1, "workers={workers}: names align");
            assert_eq!(r.2, g.2, "workers={workers}: status of {} differs", r.1);
            assert_eq!(r.3, g.3, "workers={workers}: allocation of {} differs", r.1);
        }
    }
}
