//! The batch service under contention:
//!
//! * **backpressure** — submitters beyond the queue capacity stall (the
//!   stall observable in the service metrics and the queue's
//!   blocked-push counter) and are released once a worker drains the
//!   queue, losing no job;
//! * **concurrent submitters** — many threads hammering a small bounded
//!   queue all get unique ids, and every accepted job comes back exactly
//!   once, sorted;
//! * **shutdown with pending jobs** — closing the service drains the
//!   queue first: every submitted job is reported exactly once, failed
//!   jobs included.

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ccra_ir::Program;
use ccra_machine::RegisterFile;
use ccra_regalloc::driver::batch::{
    METRIC_COMPLETED, METRIC_FAILED, METRIC_QUEUE_WAIT, METRIC_STALLS, METRIC_SUBMITTED,
};
use ccra_regalloc::{
    AllocatorConfig, BatchConfig, BatchHandle, BatchJob, BatchService, BatchStatus,
};
use ccra_workloads::{random_program, FuzzConfig};

fn fuzz_job(name: &str, seed: u64, functions: usize, stmts_per_fn: usize) -> BatchJob {
    BatchJob::new(
        name,
        random_program(
            seed,
            &FuzzConfig {
                functions,
                stmts_per_fn,
                max_loop_depth: 2,
                max_trips: 5,
            },
        ),
        RegisterFile::new(8, 6, 2, 2),
        AllocatorConfig::improved(),
    )
}

/// A job big enough that it keeps its service worker busy for the whole
/// orchestration window of the backpressure test.
fn heavy_job(name: &str, seed: u64) -> BatchJob {
    fuzz_job(name, seed, 48, 18)
}

fn light_job(name: &str, seed: u64) -> BatchJob {
    fuzz_job(name, seed, 3, 8)
}

/// Spins until `cond` holds, panicking with `what` after a generous
/// timeout so a broken service fails the test instead of hanging it.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn backpressure_engages_and_releases_without_losing_jobs() {
    // One worker, one queue slot: the third submission must find the
    // queue full while the worker chews on the heavy first job.
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 1,
        shard_workers: 1,
        ..BatchConfig::default()
    });
    let handle = service.handle();

    let id0 = service.submit(heavy_job("heavy-0", 7)).expect("queue open");
    wait_until("the worker to pick up the heavy job", || {
        handle.in_flight() == 1
    });
    // The worker is busy; this job parks in the queue's only slot.
    let id1 = service
        .submit(heavy_job("heavy-1", 11))
        .expect("queue open");
    assert_eq!(handle.queue_depth(), 1, "second job queued behind the slot");

    // A third submission stalls: the fast path fails (counted), then the
    // blocking path parks (counted) until the worker frees the slot.
    let id2 = std::thread::scope(|s| {
        let blocked = s.spawn(|| {
            service
                .submit(light_job("light-2", 13))
                .expect("queue open")
        });
        wait_until("the stall metric", || {
            handle.metrics_snapshot().counter(METRIC_STALLS) >= 1
        });
        wait_until("the blocked-push counter", || {
            handle.queue_stats().blocked_pushes >= 1
        });
        blocked.join().expect("blocked submitter released")
    });
    assert_eq!((id0, id1, id2), (0, 1, 2), "ids are sequential");

    let results = service.shutdown();
    assert_eq!(results.len(), 3, "backpressure lost no job");
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.id, i as u64);
        assert_eq!(r.status, BatchStatus::Ok, "job {} allocates", r.name);
        assert!(r.allocation.is_some());
    }
    let m = handle.metrics_snapshot();
    assert_eq!(m.counter(METRIC_SUBMITTED), 3);
    assert_eq!(m.counter(METRIC_COMPLETED), 3);
    assert_eq!(
        m.histogram(METRIC_QUEUE_WAIT).map(|h| h.count()),
        Some(3),
        "every job's queue wait observed"
    );
}

#[test]
fn concurrent_submitters_against_a_tiny_queue_each_land_exactly_once() {
    const SUBMITTERS: usize = 4;
    const JOBS_EACH: usize = 4;
    let service = BatchService::start(BatchConfig {
        workers: 2,
        queue_capacity: 2,
        shard_workers: 1,
        ..BatchConfig::default()
    });
    let handle = service.handle();

    let ids: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..SUBMITTERS {
            let (service, ids) = (&service, &ids);
            s.spawn(move || {
                for j in 0..JOBS_EACH {
                    let seed = (t * JOBS_EACH + j) as u64;
                    let id = service
                        .submit(light_job(&format!("t{t}-j{j}"), seed))
                        .expect("queue open while submitters run");
                    ids.lock().unwrap().push(id);
                }
            });
        }
    });

    let submitted = ids.into_inner().unwrap();
    let total = SUBMITTERS * JOBS_EACH;
    assert_eq!(submitted.len(), total);
    let unique: BTreeSet<u64> = submitted.iter().copied().collect();
    assert_eq!(unique.len(), total, "no id handed out twice");
    assert_eq!(*unique.iter().next_back().unwrap(), total as u64 - 1);

    let results = service.shutdown();
    assert_eq!(results.len(), total, "every accepted job reported");
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.id, i as u64, "results sorted by submission id");
        assert_eq!(r.status, BatchStatus::Ok);
    }
    let stats = handle.queue_stats();
    assert_eq!(stats.pushes, total as u64);
    assert_eq!(stats.pops, total as u64);
    assert_eq!(stats.depth, 0);
    assert!(
        stats.high_water >= 1 && stats.high_water <= 2,
        "high water within capacity: {}",
        stats.high_water
    );
    assert_eq!(
        handle.metrics_snapshot().counter(METRIC_SUBMITTED),
        total as u64
    );
}

#[test]
fn shutdown_with_pending_jobs_drains_and_reports_each_exactly_once() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 16,
        shard_workers: 1,
        ..BatchConfig::default()
    });
    let handle = service.handle();

    // Mostly healthy jobs plus one that cannot even be profiled; shut
    // down immediately, with most of them still queued.
    let mut expect_ok = Vec::new();
    for i in 0..5u64 {
        let id = service
            .submit(light_job(&format!("pending-{i}"), 100 + i))
            .expect("queue open");
        expect_ok.push(id);
    }
    let failing_id = service
        .submit(BatchJob::new(
            "no-main",
            Program::new(),
            RegisterFile::new(8, 6, 2, 2),
            AllocatorConfig::base(),
        ))
        .expect("queue open");

    let results = service.shutdown();
    assert_eq!(results.len(), 6, "shutdown drained every pending job");
    let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids, (0..6).collect::<Vec<u64>>(), "each id exactly once");
    for r in &results {
        if r.id == failing_id {
            assert!(
                matches!(&r.status, BatchStatus::Failed { error } if error.contains("profiling")),
                "the unprofilable job fails honestly"
            );
            assert!(r.allocation.is_none());
        } else {
            assert_eq!(
                r.status,
                BatchStatus::Ok,
                "job {} survives shutdown",
                r.name
            );
        }
    }

    // The handle outlives the shutdown: live state drains to zero and the
    // completion metrics stay readable (results themselves were handed to
    // shutdown's caller, so the per-job view is empty).
    assert_eq!(handle.queue_depth(), 0);
    assert_eq!(handle.in_flight(), 0);
    assert!(handle.statuses().is_empty());
    let m = handle.metrics_snapshot();
    assert_eq!(m.counter(METRIC_SUBMITTED), 6);
    assert_eq!(m.counter(METRIC_COMPLETED), 5);
    assert_eq!(m.counter(METRIC_FAILED), 1);
}

/// The statuses a [`BatchHandle`] reports while the service is live agree
/// with what shutdown later returns.
#[test]
fn live_statuses_converge_to_the_shutdown_report() {
    let service = BatchService::start(BatchConfig {
        workers: 2,
        queue_capacity: 4,
        shard_workers: 1,
        ..BatchConfig::default()
    });
    let handle: BatchHandle = service.handle();
    for i in 0..4u64 {
        service
            .submit(light_job(&format!("job-{i}"), 40 + i))
            .expect("queue open");
    }
    wait_until("all four jobs to complete", || handle.statuses().len() == 4);
    let live = handle.statuses();
    let results = service.shutdown();
    assert_eq!(live.len(), results.len());
    for ((id, name, status), r) in live.iter().zip(&results) {
        assert_eq!(*id, r.id);
        assert_eq!(name, &r.name);
        assert_eq!(status, &r.status);
    }
}

/// Every traced submission carries a [`ccra_regalloc::RequestTrace`]
/// whose Chrome rendering is valid JSON with the request's identity, and
/// the handle serves it even after shutdown (from the recent-trace
/// buffer).
#[test]
fn request_traces_ride_results_and_render_chrome_json() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 4,
        shard_workers: 2,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    for i in 0..3u64 {
        service
            .submit(light_job(&format!("traced-{i}"), 60 + i))
            .expect("queue open");
    }
    let results = service.shutdown();
    assert_eq!(results.len(), 3);
    for r in &results {
        let trace = r.trace.as_ref().expect("tracing is on by default");
        assert_eq!(trace.id, r.id);
        assert_eq!(trace.name, r.name);
        assert_eq!(trace.trace_id(), format!("req-{}", r.id));
        assert!(trace.e2e_us >= trace.service_us, "{trace:?}");
        assert!(!trace.timeline.events.is_empty(), "timeline recorded");
    }

    // Served after shutdown, from the bounded recent-trace buffer.
    let json = handle.trace_chrome_json(1).expect("trace 1 retained");
    let parsed = serde::json::parse(&json).expect("chrome trace is valid JSON");
    assert_eq!(
        parsed.get("requestId").and_then(serde::json::Value::as_str),
        Some("req-1")
    );
    let Some(serde::json::Value::Arr(events)) = parsed.get("traceEvents") else {
        panic!("chrome trace has a traceEvents array");
    };
    assert!(!events.is_empty());
    // The request-scoped lanes: a queue span, a service span, and a reply
    // instant all render by category name.
    for cat in ["queue", "service", "reply", "job"] {
        assert!(
            events
                .iter()
                .any(|e| { e.get("cat").and_then(serde::json::Value::as_str) == Some(cat) }),
            "a {cat} event renders"
        );
    }
    assert!(handle.trace(99).is_none(), "unknown ids stay unknown");
}

/// With [`BatchConfig::trace_requests`] off, requests still run and
/// measure latency — they just carry no timeline.
#[test]
fn tracing_off_still_serves_but_records_no_timeline() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 4,
        trace_requests: false,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service
        .submit(light_job("untraced", 77))
        .expect("queue open");
    let results = service.shutdown();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].status, BatchStatus::Ok);
    assert!(results[0].trace.is_none(), "no trace when tracing is off");
    assert!(handle.trace(0).is_none());
    // Latency histograms observe regardless.
    let status = handle.status_value();
    let e2e = status
        .get("latency")
        .and_then(|l| l.get("e2e"))
        .expect("latency section present");
    assert_eq!(
        e2e.get("count").and_then(serde::json::Value::as_i64),
        Some(1)
    );
}

/// A failing job automatically snapshots the flight recorder; the dump is
/// valid JSON carrying the failure event and the submission path.
#[test]
fn failed_jobs_auto_dump_the_flight_recorder() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 4,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service
        .submit(light_job("healthy", 88))
        .expect("queue open");
    service
        .submit(BatchJob::new(
            "no-main",
            Program::new(),
            RegisterFile::new(8, 6, 2, 2),
            AllocatorConfig::base(),
        ))
        .expect("queue open");
    let results = service.shutdown();
    assert_eq!(results.len(), 2);
    assert!(matches!(results[1].status, BatchStatus::Failed { .. }));

    let doc = handle.flightrec_value();
    let text = doc.to_json();
    let parsed = serde::json::parse(&text).expect("flightrec doc is valid JSON");
    let Some(serde::json::Value::Arr(dumps)) = parsed.get("dumps") else {
        panic!("flightrec doc has a dumps array");
    };
    assert_eq!(dumps.len(), 1, "exactly the failed job dumped");
    assert_eq!(
        dumps[0].get("id").and_then(serde::json::Value::as_i64),
        Some(1)
    );
    let dump = dumps[0].get("dump").expect("dump payload");
    let Some(serde::json::Value::Arr(events)) = dump.get("events") else {
        panic!("dump has an events array");
    };
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(serde::json::Value::as_str))
        .collect();
    assert!(kinds.contains(&"submit"), "{kinds:?}");
    assert!(kinds.contains(&"job_failed"), "{kinds:?}");
    assert!(kinds.contains(&"job_start"), "{kinds:?}");
    // The live recorder keeps recording after the dump.
    let live = parsed.get("live").expect("live section");
    assert!(
        live.get("recorded")
            .and_then(serde::json::Value::as_i64)
            .expect("recorded count")
            >= 4,
        "submit + start + end events recorded"
    );
}

/// Quality scoring through the service: off by default (`/status` says
/// so and no quality metrics appear); on, every successful job folds
/// into the aggregate and the metrics export — without changing any
/// result's bytes relative to an unscored service.
#[test]
fn quality_scoring_is_off_by_default_and_aggregates_when_on() {
    // Off: the default config scores nothing.
    let service = BatchService::start(BatchConfig {
        workers: 1,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service.submit(light_job("plain", 7)).expect("accepted");
    wait_until("the unscored job", || handle.statuses().len() == 1);
    let status = handle.status_value();
    let quality = status.get("quality").expect("quality object present");
    assert!(matches!(
        quality.get("enabled"),
        Some(serde::json::Value::Bool(false))
    ));
    assert!(quality.get("jobs_scored").is_none(), "off reports no sums");
    assert_eq!(
        handle.metrics_snapshot().counter("quality_reports_total"),
        0
    );
    let unscored = service.shutdown();

    // On: the same submission is scored and aggregated.
    let service = BatchService::start(BatchConfig {
        workers: 1,
        score_quality: true,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service.submit(light_job("plain", 7)).expect("accepted");
    wait_until("the scored job", || handle.statuses().len() == 1);
    let status = handle.status_value();
    let quality = status.get("quality").expect("quality object present");
    assert!(matches!(
        quality.get("enabled"),
        Some(serde::json::Value::Bool(true))
    ));
    assert_eq!(
        quality
            .get("jobs_scored")
            .and_then(serde::json::Value::as_f64),
        Some(1.0)
    );
    assert!(quality
        .get("estimated_ops")
        .and_then(serde::json::Value::as_f64)
        .is_some());
    assert_eq!(
        handle.metrics_snapshot().counter("quality_reports_total"),
        1
    );
    let scored = service.shutdown();

    // Scoring never perturbs the allocation itself.
    let bytes = |results: &[ccra_regalloc::BatchResult]| {
        results
            .iter()
            .map(|r| format!("{:?}", r.allocation.as_ref().map(|a| &a.overhead)))
            .collect::<Vec<_>>()
    };
    assert_eq!(bytes(&unscored), bytes(&scored));
}

#[test]
fn per_priority_latency_quantiles_are_boundary_exact() {
    use ccra_regalloc::driver::batch::per_priority_latency;
    use ccra_regalloc::driver::Priority;
    use ccra_regalloc::MetricsRegistry;
    use serde::json::Value;

    // Feed the interactive class a known sequence: 50 jobs at 1 us
    // (bucket bound 1), 49 at 1000 us (bucket bound 1023), one 100000 us
    // outlier (bucket bound 131071). With rank = ceil(q * count):
    // p50 hits rank 50 — the LAST observation of the 1-us bucket — and
    // p99 hits rank 99 — the last of the 1023-bucket, excluding the
    // outlier exactly.
    let mut m = MetricsRegistry::new();
    for _ in 0..50 {
        m.observe(Priority::Interactive.e2e_metric(), 1);
    }
    for _ in 0..49 {
        m.observe(Priority::Interactive.e2e_metric(), 1000);
    }
    m.observe(Priority::Interactive.e2e_metric(), 100_000);

    let v = per_priority_latency(&m);
    let class = |name: &str, field: &str| -> i64 {
        v.get(name)
            .and_then(|c| c.get(field))
            .and_then(Value::as_i64)
            .unwrap_or_else(|| panic!("per_priority has {name}.{field}"))
    };
    assert_eq!(class("interactive", "jobs"), 100);
    assert_eq!(class("interactive", "p50"), 1);
    assert_eq!(class("interactive", "p99"), 1023);

    // One more 1-us observation shifts rank 50 off the bucket edge:
    // p50 stays 1 (rank 51 of 101 still lands in the 1-us bucket), but
    // p99 (rank 100 of 101) now includes the outlier's bucket? No —
    // cum(1) = 51, cum(1023) = 100 >= 100, so p99 is still 1023. The
    // outlier only surfaces at rank 101.
    m.observe(Priority::Interactive.e2e_metric(), 1);
    let v = per_priority_latency(&m);
    let p = |field: &str| {
        v.get("interactive")
            .and_then(|c| c.get(field))
            .and_then(Value::as_i64)
            .unwrap()
    };
    assert_eq!(p("p50"), 1);
    assert_eq!(p("p99"), 1023);

    // Tipping the majority tips the median to the next bucket bound.
    let mut m2 = MetricsRegistry::new();
    for _ in 0..49 {
        m2.observe(Priority::Batch.e2e_metric(), 1);
    }
    for _ in 0..51 {
        m2.observe(Priority::Batch.e2e_metric(), 1000);
    }
    let v2 = per_priority_latency(&m2);
    assert_eq!(
        v2.get("batch")
            .and_then(|c| c.get("p50"))
            .and_then(Value::as_i64),
        Some(1023)
    );
}

#[test]
fn empty_priority_classes_report_zeros_not_absence() {
    use ccra_regalloc::driver::batch::per_priority_latency;
    use ccra_regalloc::driver::Priority;
    use ccra_regalloc::MetricsRegistry;
    use serde::json::Value;

    // Only the background class has completed anything; the other two
    // classes' histograms were never created. All three must still be
    // present, the silent ones as explicit zeros.
    let mut m = MetricsRegistry::new();
    m.observe(Priority::Background.e2e_metric(), 4096);
    let v = per_priority_latency(&m);
    for name in ["interactive", "batch", "background"] {
        let class = v.get(name).unwrap_or_else(|| panic!("{name} present"));
        let field = |f: &str| class.get(f).and_then(Value::as_i64).unwrap();
        if name == "background" {
            assert_eq!(field("jobs"), 1);
            assert_eq!(field("p50"), 8191, "4096 rounds up to its bucket bound");
            assert_eq!(field("p99"), 8191);
        } else {
            assert_eq!((field("jobs"), field("p50"), field("p99")), (0, 0, 0));
        }
    }

    // A completely silent registry reports all-zero classes too.
    let empty = per_priority_latency(&MetricsRegistry::new());
    for name in ["interactive", "batch", "background"] {
        let class = empty.get(name).expect("class present");
        assert_eq!(class.get("jobs").and_then(Value::as_i64), Some(0));
        assert_eq!(class.get("p50").and_then(Value::as_i64), Some(0));
        assert_eq!(class.get("p99").and_then(Value::as_i64), Some(0));
    }
}
