//! The memo cache's end-to-end contract:
//!
//! * **byte identity** — re-allocating an edited program through a warm
//!   [`AllocCache`] produces a [`ProgramAllocation`] equal to an uncached
//!   cold run, at worker counts {1, 2, 4, 8}, with the hit/miss split
//!   exactly matching the edit;
//! * **serving path** — a [`BatchService`] given a shared cache reports
//!   it on `/status` and in the Prometheus export, and byte-identical
//!   re-submissions actually hit.

use std::sync::Arc;

use ccra_analysis::FrequencyInfo;
use ccra_ir::{Inst, Program, RegClass};
use ccra_machine::{CostModel, RegisterFile};
use ccra_regalloc::driver::DefaultJob;
use ccra_regalloc::{
    AllocCache, AllocRequest, AllocatorConfig, BatchConfig, BatchJob, BatchService, BatchStatus,
    DriverReport, FlightRecorder, MetricsRegistry, NoopSink, ParallelDriver, ProgramAllocation,
    TimelineCollector,
};
use ccra_workloads::{random_program, FuzzConfig};
use serde::json::Value;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fuzz_program(seed: u64, functions: usize) -> Program {
    random_program(
        seed,
        &FuzzConfig {
            functions,
            stmts_per_fn: 10,
            max_loop_depth: 1,
            max_trips: 4,
        },
    )
}

/// Edits every `stride`-th function: a dead `iconst` prepended to the
/// entry block — semantically inert, but a different content hash.
fn edit_every(base: &Program, stride: usize) -> (Program, u64) {
    let mut edited = base.clone();
    let mut touched = 0u64;
    for (index, id) in base.func_ids().enumerate() {
        if index % stride == 0 {
            let f = edited.function_mut(id);
            let v = f.new_vreg(RegClass::Int);
            let entry = f.entry();
            f.block_mut(entry)
                .insts
                .insert(0, Inst::IConst { dst: v, value: 42 });
            touched += 1;
        }
    }
    (edited, touched)
}

fn run_driver(
    workers: usize,
    program: &Program,
    freq: &FrequencyInfo,
    cache: Option<&AllocCache>,
) -> (ProgramAllocation, DriverReport) {
    let driver = ParallelDriver::new(workers);
    let flight = FlightRecorder::new(workers + 1);
    let collector = TimelineCollector::disabled();
    let req = AllocRequest {
        program,
        freq,
        file: RegisterFile::mips_full(),
        config: &AllocatorConfig::improved(),
        cost: &CostModel::paper(),
    };
    let (alloc, report, _timeline) = driver
        .allocate_program_cached(
            &req,
            &mut NoopSink,
            &mut MetricsRegistry::disabled(),
            &DefaultJob,
            &collector,
            flight.view(0),
            cache,
        )
        .expect("fuzz programs allocate");
    (alloc, report)
}

#[test]
fn warm_reallocation_is_byte_identical_to_cold_at_every_worker_count() {
    let base = fuzz_program(977, 40);
    let (edited, touched) = edit_every(&base, 8);
    assert_eq!(touched, 5);
    let base_freq = FrequencyInfo::estimate(&base);
    let edited_freq = FrequencyInfo::estimate(&edited);

    let mut warms: Vec<ProgramAllocation> = Vec::new();
    for workers in WORKER_COUNTS {
        let (cold, cold_report) = run_driver(workers, &edited, &edited_freq, None);
        assert_eq!(
            cold_report.scheduler.counter("cache_hits_total"),
            0,
            "no cache traffic without a cache"
        );

        let cache = AllocCache::default();
        run_driver(workers, &base, &base_freq, Some(&cache));
        let (warm, report) = run_driver(workers, &edited, &edited_freq, Some(&cache));

        assert_eq!(
            warm, cold,
            "warm result differs from cold at {workers} worker(s)"
        );
        assert_eq!(report.scheduler.counter("cache_hits_total"), 35);
        assert_eq!(report.scheduler.counter("cache_misses_total"), 5);
        // Every job reports Ok whether replayed or freshly allocated.
        assert_eq!(report.statuses.len(), 40);
        warms.push(warm);
    }
    for w in &warms[1..] {
        assert_eq!(w, &warms[0], "warm results agree across worker counts");
    }
}

#[test]
fn a_fully_warm_cache_replays_the_entire_program() {
    let program = fuzz_program(411, 24);
    let freq = FrequencyInfo::estimate(&program);
    let cache = AllocCache::default();
    let (first, _) = run_driver(4, &program, &freq, Some(&cache));
    let (second, report) = run_driver(4, &program, &freq, Some(&cache));
    assert_eq!(second, first);
    assert_eq!(report.scheduler.counter("cache_hits_total"), 24);
    assert_eq!(report.scheduler.counter("cache_misses_total"), 0);
}

fn cache_field(status: &Value, key: &str) -> i64 {
    status
        .get("cache")
        .and_then(|c| c.get(key))
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("cache.{key} present in /status"))
}

#[test]
fn batch_status_and_metrics_report_the_shared_cache() {
    let cache = Arc::new(AllocCache::default());
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 8,
        cache: Some(cache.clone()),
        ..BatchConfig::default()
    });
    let handle = service.handle();
    let job = || {
        BatchJob::new(
            "resubmitted",
            fuzz_program(2024, 6),
            RegisterFile::mips_full(),
            AllocatorConfig::improved(),
        )
    };
    service.submit(job()).expect("queue open");
    service.submit(job()).expect("queue open");
    let results = service.shutdown();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.status == BatchStatus::Ok));
    // Identical bodies under an identical config: the second submission
    // replays all six functions.
    assert_eq!(cache.stats().hits, 6);
    assert_eq!(cache.stats().misses, 6);

    let status = handle.status_value();
    assert_eq!(
        status.get("cache").and_then(|c| c.get("enabled")),
        Some(&Value::Bool(true))
    );
    assert_eq!(cache_field(&status, "hits"), 6);
    assert_eq!(cache_field(&status, "misses"), 6);
    assert_eq!(cache_field(&status, "entries"), 6);
    assert!(cache_field(&status, "bytes") > 0);
    assert!(cache_field(&status, "budget_bytes") > 0);

    let metrics = handle.metrics_snapshot();
    assert_eq!(metrics.counter("cache_hits_total"), 6);
    assert_eq!(metrics.counter("cache_misses_total"), 6);
    let prom = metrics.to_prometheus_text();
    assert!(prom.contains("cache_hits_total 6"), "{prom}");
    assert!(prom.contains("cache_bytes"), "{prom}");
}

#[test]
fn batch_status_reports_cache_disabled_without_one() {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 4,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service
        .submit(BatchJob::new(
            "uncached",
            fuzz_program(5, 3),
            RegisterFile::mips_full(),
            AllocatorConfig::improved(),
        ))
        .expect("queue open");
    service.shutdown();
    let status = handle.status_value();
    assert_eq!(
        status.get("cache").and_then(|c| c.get("enabled")),
        Some(&Value::Bool(false))
    );
    assert!(
        status.get("cache").and_then(|c| c.get("hits")).is_none(),
        "no counters without a cache"
    );
    let metrics = handle.metrics_snapshot();
    assert_eq!(metrics.counter("cache_hits_total"), 0);
}
