//! The independent checker's contract, from both sides:
//!
//! * **acceptance** — every allocation produced by any allocator on any
//!   fuzzed program passes, including the degraded fallback;
//! * **rejection** — one deliberately corrupted allocation per invariant
//!   class is caught: swapped register assignments (register exclusivity),
//!   a dropped restore (save/restore placement), aliased spill slots (slot
//!   discipline), and falsified overhead claims (honest accounting).

use std::collections::HashMap;

use ccra_analysis::{FrequencyInfo, Webs};
use ccra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, Inst, OverheadKind, Program, RegClass};
use ccra_machine::{CostModel, PhysReg, RegisterFile};
use ccra_regalloc::{
    allocate_function, check_allocation, degraded_allocation, AllocatorConfig, CheckViolation,
    FuncAllocation, NoopSink, PriorityOrdering,
};
use ccra_workloads::{random_program, FuzzConfig};
use proptest::prelude::*;

/// A loop summing `k` live values with a call inside: enough pressure to
/// force spills on tight files and callee-save usage on larger ones.
fn pressure_program(k: usize, trips: i64) -> Program {
    let mut b = FunctionBuilder::new("main");
    let vs: Vec<_> = (0..k).map(|_| b.new_vreg(RegClass::Int)).collect();
    for (j, &v) in vs.iter().enumerate() {
        b.iconst(v, j as i64 + 1);
    }
    let i = b.new_vreg(RegClass::Int);
    let n = b.new_vreg(RegClass::Int);
    let one = b.new_vreg(RegClass::Int);
    let acc = b.new_vreg(RegClass::Int);
    b.iconst(i, 0);
    b.iconst(n, trips);
    b.iconst(one, 1);
    b.iconst(acc, 0);
    let head = b.reserve_block();
    let body = b.reserve_block();
    let exit = b.reserve_block();
    b.jump(head);
    b.switch_to(head);
    let c = b.new_vreg(RegClass::Int);
    b.cmp(CmpOp::Lt, c, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    b.call(Callee::External("g"), vec![], None);
    for &v in &vs {
        b.binary(BinOp::Add, acc, acc, v);
    }
    b.binary(BinOp::Add, i, i, one);
    b.jump(head);
    b.switch_to(exit);
    b.ret(Some(acc));
    let mut p = Program::new();
    let id = p.add_function(b.finish());
    p.set_main(id);
    p
}

fn allocate(
    p: &Program,
    file: RegisterFile,
    config: &AllocatorConfig,
) -> (ccra_ir::Function, FuncAllocation, FrequencyInfo) {
    let id = p.main().expect("main set");
    let freq = FrequencyInfo::profile(p).expect("profile runs");
    let (body, alloc) = allocate_function(
        p.function(id),
        freq.func(id),
        &file,
        config,
        &CostModel::paper(),
    )
    .expect("allocation succeeds");
    (body, alloc, freq)
}

/// Resolves each rewritten web's claimed register, as the checker does.
fn web_locs(
    body: &ccra_ir::Function,
    webs: &Webs,
    alloc: &FuncAllocation,
) -> HashMap<ccra_analysis::WebId, PhysReg> {
    let mut locs = HashMap::new();
    for (id, data) in webs.iter() {
        let defs = data.defs.iter().map(|&(bb, i)| (bb, i, true));
        let uses = data.uses.iter().map(|&(bb, i)| (bb, i, false));
        for (bb, i, is_def) in defs.chain(uses) {
            if let Some(&reg) = alloc.assignment.get(&(bb, i, data.vreg, is_def)) {
                assert_eq!(reg.class, body.class_of(data.vreg));
                locs.insert(id, reg);
            }
        }
    }
    locs
}

/// Invariant class 1 (register exclusivity): retargeting one web's claims
/// onto another web's register must surface as `RegisterOverlap` for at
/// least one (interfering) pair.
#[test]
fn checker_rejects_swapped_register_assignments() {
    let p = pressure_program(10, 5);
    let id = p.main().expect("main set");
    let (body, alloc, freq) = allocate(&p, RegisterFile::mips_full(), &AllocatorConfig::improved());
    check_allocation(p.function(id), &body, freq.func(id), &alloc).expect("clean passes");

    let webs = Webs::compute(&body);
    let locs = web_locs(&body, &webs, &alloc);
    let mut caught = false;
    'outer: for (wa, da) in webs.iter() {
        let Some(&ra) = locs.get(&wa) else { continue };
        for (wb, _) in webs.iter() {
            let Some(&rb) = locs.get(&wb) else { continue };
            if ra == rb || ra.class != rb.class {
                continue;
            }
            // Move web A into web B's register.
            let mut corrupt = alloc.clone();
            let defs = da.defs.iter().map(|&(bb, i)| (bb, i, true));
            let uses = da.uses.iter().map(|&(bb, i)| (bb, i, false));
            for (bb, i, is_def) in defs.chain(uses) {
                corrupt.assignment.insert((bb, i, da.vreg, is_def), rb);
            }
            if let Err(violations) =
                check_allocation(p.function(id), &body, freq.func(id), &corrupt)
            {
                if violations
                    .iter()
                    .any(|v| matches!(v, CheckViolation::RegisterOverlap { .. }))
                {
                    caught = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(
        caught,
        "no register-swap mutation produced a RegisterOverlap violation"
    );
}

/// Invariant class 2 (save/restore placement): deleting the callee-save
/// restore from a return block must surface as `CalleeSaveMismatch`.
#[test]
fn checker_rejects_dropped_restore() {
    let p = pressure_program(10, 5);
    let id = p.main().expect("main set");
    let (mut body, alloc, freq) =
        allocate(&p, RegisterFile::mips_full(), &AllocatorConfig::improved());
    assert!(
        alloc.callee_regs_used > 0,
        "the workload must exercise callee-save registers"
    );
    let target = body
        .block_ids()
        .find(|&bb| {
            matches!(
                body.block(bb).insts.last(),
                Some(Inst::Overhead {
                    kind: OverheadKind::CalleeSave,
                    ..
                })
            )
        })
        .expect("a return block carries a restore marker");
    body.block_mut(target).insts.pop();
    let violations =
        check_allocation(p.function(id), &body, freq.func(id), &alloc).expect_err("must reject");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, CheckViolation::CalleeSaveMismatch { .. })),
        "expected CalleeSaveMismatch, got {violations:?}"
    );
}

/// Invariant class 3 (slot discipline): retargeting a spill store onto a
/// different slot must surface as `SlotAliased` (the victim slot now mixes
/// two interfering webs' values) for at least one store/slot pair.
#[test]
fn checker_rejects_aliased_spill_slots() {
    // Tight integer bank: plenty of spill traffic.
    let p = pressure_program(12, 5);
    let id = p.main().expect("main set");
    let (body, alloc, freq) = allocate(
        &p,
        RegisterFile::new(6, 4, 0, 0),
        &AllocatorConfig::improved(),
    );
    let num_slots = body.num_spill_slots();
    assert!(num_slots >= 2, "need at least two slots to alias");
    check_allocation(p.function(id), &body, freq.func(id), &alloc).expect("clean passes");

    let mut caught = false;
    'outer: for bb in body.block_ids() {
        for j in 0..body.block(bb).insts.len() {
            let Inst::SpillStore { slot, .. } = body.block(bb).insts[j] else {
                continue;
            };
            for other in 0..num_slots {
                let other = ccra_ir::SpillSlot(other);
                if other == slot {
                    continue;
                }
                let mut mutated = body.clone();
                match &mut mutated.block_mut(bb).insts[j] {
                    Inst::SpillStore { slot, .. } => *slot = other,
                    _ => unreachable!("index addressed a spill store"),
                }
                if let Err(violations) =
                    check_allocation(p.function(id), &mutated, freq.func(id), &alloc)
                {
                    if violations
                        .iter()
                        .any(|v| matches!(v, CheckViolation::SlotAliased { .. }))
                    {
                        caught = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(
        caught,
        "no slot-retarget mutation produced a SlotAliased violation"
    );
}

/// Invariant class 4 (honest accounting): falsifying any claimed overhead
/// component must surface as `OverheadMismatch` naming that component.
#[test]
fn checker_rejects_falsified_overhead_claims() {
    let p = pressure_program(10, 5);
    let id = p.main().expect("main set");
    let (body, alloc, freq) = allocate(&p, RegisterFile::mips_full(), &AllocatorConfig::improved());
    for kind in ["spill", "caller_save", "callee_save", "shuffle"] {
        let mut corrupt = alloc.clone();
        match kind {
            "spill" => corrupt.overhead.spill += 7.0,
            "caller_save" => corrupt.overhead.caller_save += 7.0,
            "callee_save" => corrupt.overhead.callee_save += 7.0,
            _ => corrupt.overhead.shuffle += 7.0,
        }
        let violations = check_allocation(p.function(id), &body, freq.func(id), &corrupt)
            .expect_err("must reject");
        assert!(
            violations.iter().any(
                |v| matches!(v, CheckViolation::OverheadMismatch { kind: k, .. } if *k == kind)
            ),
            "expected OverheadMismatch for {kind}, got {violations:?}"
        );
    }
}

/// The degraded (spill-everything) fallback is always checker-clean.
#[test]
fn degraded_allocation_is_checker_clean() {
    let p = pressure_program(12, 5);
    let id = p.main().expect("main set");
    let freq = FrequencyInfo::profile(&p).expect("profile runs");
    let mut sink = NoopSink;
    let (body, alloc) = degraded_allocation(
        p.function(id),
        freq.func(id),
        &RegisterFile::new(6, 4, 0, 0),
        &CostModel::paper(),
        &mut sink,
    )
    .expect("degraded allocation always constructs");
    assert!(alloc.degraded);
    let res = check_allocation(p.function(id), &body, freq.func(id), &alloc);
    assert_eq!(res, Ok(()), "degraded allocation must pass the checker");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Acceptance: every allocator's output on fuzzed programs, at varying
    /// register files, passes the checker for every function.
    #[test]
    fn checker_accepts_all_allocators_on_fuzzed_programs(
        seed in 0u64..10_000,
        which in 0usize..4,
        file_ix in 0usize..3,
    ) {
        let program = random_program(seed, &FuzzConfig::default());
        let freq = FrequencyInfo::profile(&program).expect("profile runs");
        let config = [
            AllocatorConfig::improved(),
            AllocatorConfig::improved_optimistic(),
            AllocatorConfig::priority(PriorityOrdering::Sorting),
            AllocatorConfig::cbh(),
        ][which];
        let file = [
            RegisterFile::minimum(),
            RegisterFile::new(6, 4, 1, 0),
            RegisterFile::mips_full(),
        ][file_ix];
        for (id, f) in program.functions() {
            let (body, alloc) = allocate_function(
                f,
                freq.func(id),
                &file,
                &config,
                &CostModel::paper(),
            )
            .expect("allocation succeeds");
            let res = check_allocation(f, &body, freq.func(id), &alloc);
            prop_assert!(res.is_ok(), "{}: {:?}", f.name(), res.err());
        }
    }
}
