//! The parallel driver's contract, end to end:
//!
//! * **determinism** — at worker counts {1, 2, 4, 8} the driver produces a
//!   [`ProgramAllocation`] equal to the serial pipeline's, byte-identical
//!   rewritten function bodies, the same normalized trace stream, and the
//!   same merged metrics — on the paper's fig. 7 workloads and on fuzzed
//!   many-function programs;
//! * **fault isolation** — a job whose allocator returns an [`AllocError`]
//!   and a job that panics inside a worker both yield a degraded, flagged
//!   result for that function only; every sibling completes strictly and
//!   checker-clean;
//! * **batch service** — submissions drain under backpressure and come
//!   back sorted by id with honest per-job statuses, a failed job never
//!   poisoning its siblings.

use ccra_analysis::FrequencyInfo;
use ccra_ir::{display_function, BinOp, Callee, CmpOp, FunctionBuilder, Program, RegClass};
use ccra_machine::{CostModel, RegisterFile};
use ccra_regalloc::driver::timeline::SpanKind;
use ccra_regalloc::driver::{AllocJob, DefaultJob, JobCtx};
use ccra_regalloc::trace::AllocSink;
use ccra_regalloc::{
    allocate_program_instrumented, check_allocation, AllocError, AllocEvent, AllocRequest,
    AllocatorConfig, BatchConfig, BatchJob, BatchService, BatchStatus, MetricsRegistry,
    ParallelDriver, ProgramAllocation, RecordingSink, TimelineCollector, TimelineEvent,
};
use ccra_workloads::{random_program, spec_program_scaled, FuzzConfig, Scale, SpecProgram};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A serial reference run: allocation, recorded events, populated metrics.
fn serial_reference(
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
) -> (ProgramAllocation, Vec<AllocEvent>, MetricsRegistry) {
    let mut sink = RecordingSink::new();
    let mut metrics = MetricsRegistry::new();
    let alloc = allocate_program_instrumented(
        program,
        freq,
        file,
        config,
        &CostModel::paper(),
        &mut sink,
        &mut metrics,
    )
    .expect("serial allocation succeeds");
    (alloc, sink.events, metrics)
}

/// Asserts one parallel run reproduces the serial reference exactly.
fn assert_matches_serial(
    label: &str,
    workers: usize,
    program: &Program,
    freq: &FrequencyInfo,
    file: RegisterFile,
    config: &AllocatorConfig,
    serial: &(ProgramAllocation, Vec<AllocEvent>, MetricsRegistry),
) {
    let (serial_alloc, serial_events, serial_metrics) = serial;
    let driver = ParallelDriver::new(workers);
    let req = AllocRequest {
        program,
        freq,
        file,
        config: &config.clone(),
        cost: &CostModel::paper(),
    };
    let mut sink = RecordingSink::new();
    let mut metrics = MetricsRegistry::new();
    let (alloc, report) = driver
        .allocate_program_detailed(&req, &mut sink, &mut metrics)
        .expect("parallel allocation succeeds");

    // The allocation itself is equal, field for field.
    assert_eq!(
        &alloc, serial_alloc,
        "{label}: workers={workers} allocation differs from serial"
    );
    // Rewritten bodies are byte-identical.
    for id in program.func_ids() {
        assert_eq!(
            display_function(alloc.program.function(id)),
            display_function(serial_alloc.program.function(id)),
            "{label}: workers={workers} body of function {id:?} differs"
        );
    }
    // The merged trace stream equals the serial one once wall-clock
    // fields are normalized away.
    let par_norm: Vec<AllocEvent> = sink.events.iter().map(|e| e.clone().normalized()).collect();
    let ser_norm: Vec<AllocEvent> = serial_events
        .iter()
        .map(|e| e.clone().normalized())
        .collect();
    assert_eq!(
        par_norm, ser_norm,
        "{label}: workers={workers} normalized event stream differs"
    );
    // Every merged counter equals the serial registry's.
    for (name, value) in serial_metrics.counters() {
        assert_eq!(
            metrics.counter(name),
            value,
            "{label}: workers={workers} counter {name} differs"
        );
    }
    for (name, _) in metrics.counters() {
        assert!(
            serial_metrics.counters().any(|(n, _)| n == name),
            "{label}: workers={workers} invents counter {name}"
        );
    }
    // Deterministic histograms merge bucket-for-bucket; timing ones agree
    // on observation counts.
    for (name, h) in serial_metrics.histograms() {
        let m = metrics
            .histogram(name)
            .unwrap_or_else(|| panic!("{label}: histogram {name} present"));
        assert_eq!(m.count(), h.count(), "{label}: histogram {name} count");
        if !name.ends_with("_micros") {
            assert_eq!(m.sum(), h.sum(), "{label}: histogram {name} sum");
            assert_eq!(
                m.buckets(),
                h.buckets(),
                "{label}: histogram {name} buckets"
            );
        }
    }
    // Scheduling facts stay in the report and account for every job.
    assert_eq!(report.statuses.len(), program.num_functions());
    assert_eq!(report.degraded_funcs(), 0, "{label}: nothing degrades");
    let executed: u64 = report.jobs_per_worker.iter().sum();
    assert_eq!(executed, program.num_functions() as u64);
}

fn fig7_workloads() -> Vec<(&'static str, Program)> {
    vec![
        (
            "eqntott",
            spec_program_scaled(SpecProgram::Eqntott, Scale(1.0)),
        ),
        ("ear", spec_program_scaled(SpecProgram::Ear, Scale(1.0))),
        ("li", spec_program_scaled(SpecProgram::Li, Scale(1.0))),
    ]
}

fn many_function_fuzz(seed: u64, functions: usize) -> Program {
    random_program(
        seed,
        &FuzzConfig {
            functions,
            stmts_per_fn: 14,
            max_loop_depth: 2,
            max_trips: 5,
        },
    )
}

#[test]
fn fig7_workloads_are_deterministic_at_every_worker_count() {
    for (name, program) in fig7_workloads() {
        let freq = FrequencyInfo::profile(&program).expect("profile runs");
        for (config_label, config) in [
            ("improved", AllocatorConfig::improved()),
            ("base", AllocatorConfig::base()),
        ] {
            for file in [RegisterFile::new(8, 6, 2, 2), RegisterFile::new(6, 4, 0, 0)] {
                let serial = serial_reference(&program, &freq, file, &config);
                for workers in WORKER_COUNTS {
                    assert_matches_serial(
                        &format!("{name}/{config_label}"),
                        workers,
                        &program,
                        &freq,
                        file,
                        &config,
                        &serial,
                    );
                }
            }
        }
    }
}

#[test]
fn fuzzed_many_function_programs_are_deterministic_at_every_worker_count() {
    for seed in [7, 1997] {
        let program = many_function_fuzz(seed, 17);
        let freq = FrequencyInfo::profile(&program).expect("profile runs");
        let config = AllocatorConfig::improved();
        let file = RegisterFile::new(6, 4, 1, 1); // tight: spill rounds happen
        let serial = serial_reference(&program, &freq, file, &config);
        for workers in WORKER_COUNTS {
            assert_matches_serial(
                &format!("fuzz-{seed}"),
                workers,
                &program,
                &freq,
                file,
                &config,
                &serial,
            );
        }
    }
}

/// Four functions with enough shape that allocation is non-trivial.
fn four_func_program() -> Program {
    let mut p = Program::new();
    for (i, name) in ["main", "beta", "gamma", "delta"].iter().enumerate() {
        let mut b = FunctionBuilder::new(*name);
        let vs: Vec<_> = (0..6).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in vs.iter().enumerate() {
            b.iconst(v, (i + j) as i64 + 1);
        }
        let iv = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(iv, 0);
        b.iconst(n, 4);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, iv, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.binary(BinOp::Add, iv, iv, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let id = p.add_function(b.finish());
        if *name == "main" {
            p.set_main(id);
        }
    }
    p
}

/// A job that fails (or panics) on one function by name, delegating the
/// rest to the real allocator.
struct FaultyOn {
    victim: &'static str,
    panic: bool,
}

impl AllocJob for FaultyOn {
    fn run(
        &self,
        ctx: &JobCtx<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<(ccra_ir::Function, ccra_regalloc::FuncAllocation), AllocError> {
        if ctx.func.name() == self.victim {
            if self.panic {
                panic!("injected fault in {}", self.victim);
            }
            return Err(AllocError::SpillRoundsExceeded {
                func: self.victim.to_string(),
                rounds: 1,
                remaining_uncolored: 7,
            });
        }
        DefaultJob.run(ctx, sink, metrics)
    }
}

fn run_faulty(victim: &'static str, panic: bool, workers: usize) {
    let program = four_func_program();
    let freq = FrequencyInfo::profile(&program).expect("profile runs");
    let file = RegisterFile::new(8, 6, 2, 2);
    let config = AllocatorConfig::improved();
    let req = AllocRequest {
        program: &program,
        freq: &freq,
        file,
        config: &config,
        cost: &CostModel::paper(),
    };
    let driver = ParallelDriver::new(workers);
    let mut sink = RecordingSink::new();
    let mut metrics = MetricsRegistry::new();
    let (alloc, report) = driver
        .allocate_program_with_job(&req, &mut sink, &mut metrics, &FaultyOn { victim, panic })
        .expect("one faulty job must not sink the program");

    let victim_id = program.find(victim).expect("victim exists");
    assert_eq!(report.degraded_funcs(), 1, "exactly the victim degrades");
    assert!(report.statuses[victim_id.index()].is_degraded());
    assert!(alloc.per_func[victim_id.index()].degraded, "result flagged");
    let degraded_events: Vec<&AllocEvent> = sink
        .events
        .iter()
        .filter(|e| matches!(e, AllocEvent::Degraded(_)))
        .collect();
    assert_eq!(degraded_events.len(), 1, "one degraded event");
    if panic {
        match degraded_events[0] {
            AllocEvent::Degraded(info) => {
                assert_eq!(info.func, victim);
                assert!(
                    info.reason.contains("worker panicked")
                        && info.reason.contains("injected fault"),
                    "reason names the panic: {}",
                    info.reason
                );
            }
            _ => unreachable!(),
        }
    }
    assert_eq!(metrics.counter("alloc_degraded_total"), 1);

    // Every sibling completed strictly, and every function — the degraded
    // one included — passes the independent checker.
    for (id, f) in program.functions() {
        if id != victim_id {
            assert_eq!(
                report.statuses[id.index()],
                ccra_regalloc::JobStatus::Ok,
                "sibling {} unaffected",
                f.name()
            );
            assert!(!alloc.per_func[id.index()].degraded);
        }
        check_allocation(
            f,
            alloc.program.function(id),
            freq.func(id),
            &alloc.per_func[id.index()],
        )
        .unwrap_or_else(|v| panic!("function {} checker-clean: {v:?}", f.name()));
    }
}

/// Tracing a batch never changes its result: the allocation still equals
/// the serial reference, no scheduler counter leaks into the program
/// metrics, the timeline accounts for every job, and the report's summary
/// is deterministic in everything but the steal count.
#[test]
fn traced_batches_match_serial_and_summarize() {
    let program = four_func_program();
    let freq = FrequencyInfo::profile(&program).expect("profile runs");
    let file = RegisterFile::new(8, 6, 2, 2);
    let config = AllocatorConfig::improved();
    let serial = serial_reference(&program, &freq, file, &config);

    for workers in [1, 4] {
        let driver = ParallelDriver::new(workers);
        let req = AllocRequest {
            program: &program,
            freq: &freq,
            file,
            config: &config,
            cost: &CostModel::paper(),
        };
        let collector = TimelineCollector::enabled();
        let mut sink = RecordingSink::new();
        let mut metrics = MetricsRegistry::new();
        let (alloc, report, timeline) = driver
            .allocate_program_traced(&req, &mut sink, &mut metrics, &DefaultJob, &collector)
            .expect("traced allocation succeeds");

        assert_eq!(&alloc, &serial.0, "tracing never changes the result");
        for (name, value) in serial.2.counters() {
            assert_eq!(
                metrics.counter(name),
                value,
                "workers={workers}: counter {name} differs under tracing"
            );
        }
        for (name, _) in metrics.counters() {
            assert!(
                serial.2.counters().any(|(n, _)| n == name),
                "workers={workers}: tracing leaks counter {name} into program metrics"
            );
        }

        assert_eq!(timeline.workers, workers);
        let job_spans = timeline
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TimelineEvent::Span {
                        kind: SpanKind::Job,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(job_spans, 4, "one job span per function");
        assert!(
            timeline.events.iter().any(|e| matches!(
                e,
                TimelineEvent::Span {
                    kind: SpanKind::Phase,
                    ..
                }
            )),
            "phase spans nest inside the job spans"
        );
        for tid in timeline.lane_ids() {
            assert!(
                (tid as usize) <= workers,
                "lane {tid} beyond the driver lane"
            );
        }

        let summary = report.summary();
        assert_eq!(summary.workers, workers);
        assert_eq!(summary.total_jobs, 4);
        assert_eq!(summary.degraded, 0);
        assert_eq!(summary.panics, 0);
        assert_eq!(summary.steals, report.steals);
        assert!(summary.to_string().contains("4 job(s)"), "{summary}");

        // The scheduler shard carries the driver_* names — and only here.
        assert_eq!(report.scheduler.counter("driver_jobs_total"), 4);
        assert_eq!(
            report.scheduler.counter("driver_steals_total"),
            report.steals
        );
    }

    // A disabled collector is free: no events, no scheduler metrics.
    let driver = ParallelDriver::new(4);
    let req = AllocRequest {
        program: &program,
        freq: &freq,
        file,
        config: &config,
        cost: &CostModel::paper(),
    };
    let (_, report, timeline) = driver
        .allocate_program_traced(
            &req,
            &mut RecordingSink::new(),
            &mut MetricsRegistry::new(),
            &DefaultJob,
            &TimelineCollector::disabled(),
        )
        .expect("untraced allocation succeeds");
    assert!(timeline.is_empty(), "disabled collector records nothing");
    assert!(report.scheduler.is_empty(), "no scheduler shard either");
}

#[test]
fn an_alloc_error_degrades_only_its_function() {
    for workers in [1, 4] {
        run_faulty("gamma", false, workers);
    }
}

#[test]
fn a_worker_panic_degrades_only_its_function() {
    for workers in [1, 4] {
        run_faulty("beta", true, workers);
    }
}

#[test]
fn batch_service_round_trips_jobs_and_isolates_failures() {
    let file = RegisterFile::new(8, 6, 2, 2);
    let service = BatchService::start(BatchConfig {
        workers: 2,
        queue_capacity: 4,
        shard_workers: 2,
        ..BatchConfig::default()
    });
    let mut expected = Vec::new();
    for (i, seed) in [3u64, 11, 42].iter().enumerate() {
        let name = format!("fuzz-{seed}");
        let id = service
            .submit(BatchJob::new(
                &name,
                many_function_fuzz(*seed, 5),
                file,
                AllocatorConfig::improved(),
            ))
            .expect("queue open");
        assert_eq!(id, i as u64, "ids are sequential");
        expected.push((id, name, true));
    }
    // A program with no main cannot be profiled: the job fails, honestly
    // and alone.
    let id = service
        .submit(BatchJob::new(
            "no-main",
            Program::new(),
            file,
            AllocatorConfig::base(),
        ))
        .expect("queue open");
    expected.push((id, "no-main".to_string(), false));

    let results = service.shutdown();
    assert_eq!(results.len(), expected.len());
    for (result, (id, name, ok)) in results.iter().zip(&expected) {
        assert_eq!(result.id, *id, "results sorted by submission id");
        assert_eq!(&result.name, name);
        if *ok {
            assert_eq!(result.status, BatchStatus::Ok);
            let alloc = result.allocation.as_ref().expect("allocation present");
            assert!(alloc.overhead.total() >= 0.0);
        } else {
            match &result.status {
                BatchStatus::Failed { error } => {
                    assert!(error.contains("profiling failed"), "honest error: {error}");
                }
                other => panic!("no-main job must fail, got {other:?}"),
            }
            assert!(result.allocation.is_none());
        }
    }
}

#[test]
fn batch_service_shutdown_with_nothing_submitted_is_clean() {
    let service = BatchService::start(BatchConfig::default());
    assert_eq!(service.pending(), 0);
    assert!(service.shutdown().is_empty());
}

/// Full observability on — timeline collector AND flight recorder — never
/// changes the allocation: at every worker count the observed run equals
/// the serial reference byte for byte, and the flight record stays in the
/// report (no dump, since nothing degraded).
#[test]
fn observed_runs_are_deterministic_at_every_worker_count() {
    use ccra_regalloc::FlightRecorder;

    let program = many_function_fuzz(1997, 17);
    let freq = FrequencyInfo::profile(&program).expect("profile runs");
    let config = AllocatorConfig::improved();
    let file = RegisterFile::new(6, 4, 1, 1);
    let serial = serial_reference(&program, &freq, file, &config);

    for workers in WORKER_COUNTS {
        let driver = ParallelDriver::new(workers);
        let req = AllocRequest {
            program: &program,
            freq: &freq,
            file,
            config: &config,
            cost: &CostModel::paper(),
        };
        let collector = TimelineCollector::enabled();
        let flight = FlightRecorder::new(workers + 1);
        let mut sink = RecordingSink::new();
        let mut metrics = MetricsRegistry::new();
        let (alloc, report, timeline) = driver
            .allocate_program_observed(
                &req,
                &mut sink,
                &mut metrics,
                &DefaultJob,
                &collector,
                flight.view(0),
            )
            .expect("observed allocation succeeds");

        assert_eq!(
            &alloc, &serial.0,
            "workers={workers}: observation changes the allocation"
        );
        for id in program.func_ids() {
            assert_eq!(
                display_function(alloc.program.function(id)),
                display_function(serial.0.program.function(id)),
                "workers={workers}: body of {id:?} differs under observation"
            );
        }
        let par_norm: Vec<AllocEvent> =
            sink.events.iter().map(|e| e.clone().normalized()).collect();
        let ser_norm: Vec<AllocEvent> = serial.1.iter().map(|e| e.clone().normalized()).collect();
        assert_eq!(
            par_norm, ser_norm,
            "workers={workers}: event stream differs under observation"
        );
        for (name, value) in serial.2.counters() {
            assert_eq!(
                metrics.counter(name),
                value,
                "workers={workers}: counter {name} differs under observation"
            );
        }
        assert!(!timeline.is_empty(), "the collector recorded");
        assert!(
            flight.total_events() >= program.num_functions() as u64 * 2,
            "a start and an end event per job at least"
        );
        assert!(
            report.flight_dump.is_none(),
            "workers={workers}: clean runs do not dump"
        );
    }
}

/// A degrading job auto-dumps the flight recorder into the report as
/// valid JSON carrying the failure event.
#[test]
fn degraded_jobs_dump_the_flight_recorder_as_valid_json() {
    use ccra_regalloc::FlightRecorder;

    for (victim, panic, kind) in [
        ("gamma", false, "job_degraded"),
        ("beta", true, "job_panicked"),
    ] {
        let program = four_func_program();
        let freq = FrequencyInfo::profile(&program).expect("profile runs");
        let req = AllocRequest {
            program: &program,
            freq: &freq,
            file: RegisterFile::new(8, 6, 2, 2),
            config: &AllocatorConfig::improved(),
            cost: &CostModel::paper(),
        };
        let driver = ParallelDriver::new(2);
        let flight = FlightRecorder::new(3);
        let (_, report, _) = driver
            .allocate_program_observed(
                &req,
                &mut RecordingSink::new(),
                &mut MetricsRegistry::new(),
                &FaultyOn { victim, panic },
                &TimelineCollector::disabled(),
                flight.view(0),
            )
            .expect("the faulty job degrades, the batch survives");
        assert_eq!(report.degraded_funcs(), 1);

        let dump = report
            .flight_dump
            .as_ref()
            .expect("a degraded batch dumps automatically");
        let parsed = serde::json::parse(dump).expect("dump is valid JSON");
        let Some(serde::json::Value::Arr(events)) = parsed.get("events") else {
            panic!("dump has an events array");
        };
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("kind").and_then(serde::json::Value::as_str))
            .collect();
        assert!(kinds.contains(&"job_start"), "victim={victim}: {kinds:?}");
        assert!(kinds.contains(&kind), "victim={victim}: {kinds:?}");
    }
}

/// With an enabled recorder but a *disabled* view lane check: the
/// disabled recorder records nothing and dumps nothing, so the untraced
/// entry points stay zero-cost.
#[test]
fn disabled_recorders_stay_silent() {
    use ccra_regalloc::{FlightKind, FlightRecorder};

    let rec = FlightRecorder::disabled();
    let view = rec.view(0);
    assert!(!view.enabled());
    view.record(0, FlightKind::JobStart, 1, 0);
    assert_eq!(rec.total_events(), 0);
}

/// The tentpole determinism criterion of the quality observatory: scoring
/// is a pure post-pass on the deterministically merged allocation, so the
/// quality report's JSON is byte-identical at workers {1, 2, 4, 8} and
/// equal to scoring the serial allocation.
#[test]
fn quality_reports_are_byte_identical_at_any_worker_count() {
    use ccra_machine::CycleModel;
    use ccra_regalloc::score_program;

    let program = spec_program_scaled(SpecProgram::Eqntott, Scale(0.1));
    let freq = FrequencyInfo::estimate(&program);
    let file = RegisterFile::mips_full();
    let config = AllocatorConfig::improved();
    let cycles = CycleModel::decstation();

    let serial = ccra_regalloc::allocate_program(&program, &freq, file, &config)
        .expect("serial allocation succeeds");
    let serial_json = score_program(&serial, &freq, &config.label(), &cycles)
        .to_json_value()
        .to_json();
    assert!(!serial_json.is_empty());

    for workers in WORKER_COUNTS {
        let driver = ParallelDriver::new(workers);
        let req = AllocRequest {
            program: &program,
            freq: &freq,
            file,
            config: &config,
            cost: &CostModel::paper(),
        };
        let (_, report) = driver
            .allocate_program_scored(&req, &cycles)
            .expect("scored allocation succeeds");
        assert_eq!(
            report.to_json_value().to_json(),
            serial_json,
            "workers={workers}: quality report diverged from serial"
        );
    }
}
