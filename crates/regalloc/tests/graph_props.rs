//! Property tests for the interference graph against a set-of-pairs model.

use ccra_regalloc::InterferenceGraph;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn graph_matches_pair_set(
        n in 1usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..200),
    ) {
        let mut g = InterferenceGraph::new(n);
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for (a, b) in edges {
            let (a, b) = (a % n as u32, b % n as u32);
            g.add_edge(a, b);
            if a != b {
                model.insert((a.min(b), a.max(b)));
            }
        }
        prop_assert_eq!(g.num_edges(), model.len());
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                prop_assert_eq!(
                    g.interferes(a, b),
                    a != b && model.contains(&(a.min(b), a.max(b)))
                );
            }
            // Neighbor lists are duplicate-free and consistent.
            let nb: HashSet<u32> = g.neighbors(a).iter().copied().collect();
            prop_assert_eq!(nb.len(), g.degree(a));
            for &b in &nb {
                prop_assert!(g.interferes(a, b));
            }
        }
    }
}
