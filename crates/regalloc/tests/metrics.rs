//! The metrics layer's pipeline contract:
//!
//! * an instrumented run populates the counters, gauges, and per-phase
//!   histograms the perf harness depends on, and its aggregates agree with
//!   the per-event trace stream;
//! * a disabled registry records nothing and does not perturb the
//!   allocation (same results as the plain entry point);
//! * per-function registries merged equal the program-level registry on
//!   every deterministic metric.

use ccra_analysis::FrequencyInfo;
use ccra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, Program, RegClass};
use ccra_machine::{CostModel, RegisterFile};
use ccra_regalloc::trace::Phase;
use ccra_regalloc::{
    allocate_function_instrumented, allocate_program, allocate_program_instrumented,
    check_allocation_metered, AllocEvent, AllocatorConfig, MetricsRegistry, NoopSink,
    RecordingSink,
};

/// Two functions with a call-carrying loop each: enough shape for spills,
/// coalescing, and multi-function aggregation.
fn two_func_program(k: usize, trips: i64) -> Program {
    let mut p = Program::new();
    for name in ["main", "aux"] {
        let mut b = FunctionBuilder::new(name);
        let vs: Vec<_> = (0..k).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in vs.iter().enumerate() {
            b.iconst(v, j as i64 + 1);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, trips);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let id = p.add_function(b.finish());
        if name == "main" {
            p.set_main(id);
        }
    }
    p
}

#[test]
fn instrumented_run_populates_counters_gauges_and_histograms() {
    let p = two_func_program(9, 13);
    let freq = FrequencyInfo::profile(&p).expect("profile runs");
    let file = RegisterFile::new(6, 4, 1, 0); // tight: forces spill rounds
    let mut metrics = MetricsRegistry::new();
    let out = allocate_program_instrumented(
        &p,
        &freq,
        file,
        &AllocatorConfig::improved(),
        &CostModel::paper(),
        &mut NoopSink,
        &mut metrics,
    )
    .expect("allocation succeeds");

    assert_eq!(metrics.counter("alloc_programs_total"), 1);
    assert_eq!(metrics.counter("alloc_functions_total"), 2);
    assert_eq!(metrics.counter("alloc_degraded_total"), 0);
    let rounds: u64 = out.per_func.iter().map(|fa| u64::from(fa.rounds)).sum();
    assert_eq!(metrics.counter("alloc_rounds_total"), rounds);
    assert!(rounds > 2, "the tight file must force extra rounds");
    let spilled: u64 = out.per_func.iter().map(|fa| fa.spilled_ranges as u64).sum();
    assert_eq!(metrics.counter("spill_ranges_total"), spilled);
    assert!(metrics.counter("chaitin_banks_total") >= rounds);
    assert!(metrics.counter("select_colored_total") > 0);
    assert!(metrics.counter("analysis_web_refs_total") > 0);

    // Per-phase wall-clock histograms: one build per (re)build round, one
    // program-level observation, per-round shapes.
    for phase in [Phase::Build, Phase::Simplify, Phase::Select] {
        let h = metrics
            .histogram(phase.metric_name())
            .unwrap_or_else(|| panic!("{} observed", phase.metric_name()));
        assert!(h.count() > 0);
    }
    assert_eq!(
        metrics.histogram("program_alloc_micros").map(|h| h.count()),
        Some(1)
    );
    assert_eq!(
        metrics.histogram("func_alloc_micros").map(|h| h.count()),
        Some(2)
    );
    assert_eq!(
        metrics.histogram("func_rounds").map(|h| h.sum()),
        Some(rounds)
    );
    assert_eq!(
        metrics.histogram("graph_nodes").map(|h| h.count()),
        Some(rounds)
    );
    assert_eq!(
        metrics
            .histogram("analysis_liveness_iterations")
            .map(|h| h.count() > 0),
        Some(true)
    );
    assert!(metrics.gauge("graph_nodes_peak").unwrap_or(0.0) > 0.0);
    assert!(metrics.gauge("graph_max_degree_peak").unwrap_or(0.0) > 0.0);

    // Exporters render the real contents.
    let prom = metrics.to_prometheus_text();
    assert!(prom.contains("alloc_functions_total 2"));
    assert!(prom.contains("# TYPE phase_build_micros histogram"));
    let json = metrics.to_json();
    assert!(json.contains("\"alloc_functions_total\":2"));
}

#[test]
fn metrics_agree_with_the_trace_event_stream() {
    let p = two_func_program(10, 7);
    let freq = FrequencyInfo::profile(&p).expect("profile runs");
    let file = RegisterFile::new(6, 4, 0, 0);
    let mut metrics = MetricsRegistry::new();
    let mut sink = RecordingSink::new();
    allocate_program_instrumented(
        &p,
        &freq,
        file,
        &AllocatorConfig::base(),
        &CostModel::paper(),
        &mut sink,
        &mut metrics,
    )
    .expect("allocation succeeds");

    let traced_spills: u64 = sink
        .events
        .iter()
        .filter_map(|e| match e {
            AllocEvent::Spill(s) => Some(s.spilled as u64),
            _ => None,
        })
        .sum();
    assert_eq!(metrics.counter("spill_ranges_total"), traced_spills);
    let traced_rounds = sink
        .events
        .iter()
        .filter(|e| matches!(e, AllocEvent::Round(_)))
        .count() as u64;
    assert_eq!(metrics.counter("alloc_rounds_total"), traced_rounds);
    // Every phase span in the stream has a histogram observation.
    let traced_phases = sink
        .events
        .iter()
        .filter(|e| matches!(e, AllocEvent::Phase(_)))
        .count() as u64;
    let histogram_phases: u64 = Phase::ALL
        .iter()
        .filter_map(|ph| metrics.histogram(ph.metric_name()))
        .map(|h| h.count())
        .sum();
    assert_eq!(histogram_phases, traced_phases);
}

#[test]
fn disabled_metrics_add_no_events_and_do_not_perturb_the_allocation() {
    let p = two_func_program(8, 11);
    let freq = FrequencyInfo::profile(&p).expect("profile runs");
    let file = RegisterFile::new(8, 6, 2, 2);
    let config = AllocatorConfig::improved();
    let plain = allocate_program(&p, &freq, file, &config).expect("plain allocation");
    let mut metrics = MetricsRegistry::disabled();
    let instrumented = allocate_program_instrumented(
        &p,
        &freq,
        file,
        &config,
        &CostModel::paper(),
        &mut NoopSink,
        &mut metrics,
    )
    .expect("instrumented allocation");
    assert!(metrics.is_empty(), "a disabled registry records nothing");
    assert_eq!(metrics.counter("alloc_programs_total"), 0);
    assert!(metrics.histogram("program_alloc_micros").is_none());
    assert_eq!(plain.overhead.total(), instrumented.overhead.total());
    for (a, b) in plain.per_func.iter().zip(instrumented.per_func.iter()) {
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.spilled_ranges, b.spilled_ranges);
        assert_eq!(a.assignment, b.assignment);
    }
}

#[test]
fn per_function_registries_merge_to_the_program_registry() {
    let p = two_func_program(9, 5);
    let freq = FrequencyInfo::profile(&p).expect("profile runs");
    let file = RegisterFile::new(6, 4, 1, 1);
    let config = AllocatorConfig::improved();
    let cost = CostModel::paper();

    let mut program_metrics = MetricsRegistry::new();
    allocate_program_instrumented(
        &p,
        &freq,
        file,
        &config,
        &cost,
        &mut NoopSink,
        &mut program_metrics,
    )
    .expect("program allocation");

    let mut merged = MetricsRegistry::new();
    for (id, f) in p.functions() {
        let mut per_func = MetricsRegistry::new();
        allocate_function_instrumented(
            f,
            freq.func(id),
            &file,
            &config,
            &cost,
            &mut NoopSink,
            &mut per_func,
        )
        .expect("function allocation");
        merged.merge(&per_func);
    }

    // Every counter is deterministic; the program registry adds only the
    // program-level counter on top of the merged per-function ones.
    for (name, value) in program_metrics.counters() {
        let expected = if name == "alloc_programs_total" {
            0
        } else {
            value
        };
        assert_eq!(
            merged.counter(name),
            expected,
            "counter {name} must merge exactly"
        );
    }
    // Deterministic (non-timing) histograms merge bucket-for-bucket;
    // timing histograms agree on observation counts.
    for (name, h) in program_metrics.histograms() {
        if name == "program_alloc_micros" {
            continue;
        }
        let m = merged
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} present after merge"));
        assert_eq!(m.count(), h.count(), "histogram {name} count");
        if !name.ends_with("_micros") {
            assert_eq!(m.sum(), h.sum(), "histogram {name} sum");
            assert_eq!(m.buckets(), h.buckets(), "histogram {name} buckets");
        }
    }
}

/// Drift guard: `Phase::ALL` and the per-phase names stay in lockstep
/// with the enum. The `match` below is deliberately exhaustive with no
/// wildcard — adding a `Phase` variant fails to compile right here,
/// forcing `EXPECTED_PHASES`, `Phase::ALL`, and the name tables to be
/// extended together.
#[test]
fn every_phase_is_in_all_with_a_unique_metric_name() {
    const EXPECTED_PHASES: usize = 8;
    fn witness(p: Phase) {
        match p {
            Phase::Build
            | Phase::Coalesce
            | Phase::Simplify
            | Phase::Select
            | Phase::SpillInsert
            | Phase::Reconstruct
            | Phase::Rewrite
            | Phase::Check => {}
        }
    }
    assert_eq!(
        Phase::ALL.len(),
        EXPECTED_PHASES,
        "a Phase variant was added without extending Phase::ALL"
    );
    for p in Phase::ALL {
        witness(p);
    }
    let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    let mut metric_names: Vec<&str> = Phase::ALL.iter().map(|p| p.metric_name()).collect();
    names.sort_unstable();
    metric_names.sort_unstable();
    names.dedup();
    metric_names.dedup();
    assert_eq!(names.len(), EXPECTED_PHASES, "phase names are unique");
    assert_eq!(
        metric_names.len(),
        EXPECTED_PHASES,
        "phase metric names are unique"
    );
    for (p, m) in Phase::ALL
        .iter()
        .zip(Phase::ALL.iter().map(|p| p.metric_name()))
    {
        assert!(
            m.starts_with("phase_") && m.ends_with("_micros"),
            "{:?} metric name {m} follows the phase_*_micros convention",
            p
        );
    }
}

#[test]
fn metered_checker_reports_into_metrics() {
    let p = two_func_program(6, 3);
    let freq = FrequencyInfo::profile(&p).expect("profile runs");
    let file = RegisterFile::new(8, 6, 2, 2);
    let out = allocate_program(&p, &freq, file, &AllocatorConfig::improved()).expect("allocation");
    let mut metrics = MetricsRegistry::new();
    for (id, f) in p.functions() {
        check_allocation_metered(
            f,
            out.program.function(id),
            freq.func(id),
            out.func(id),
            &mut metrics,
        )
        .expect("allocation is checker-clean");
    }
    assert_eq!(metrics.counter("check_runs_total"), 2);
    assert_eq!(metrics.counter("check_violations_total"), 0);
    assert_eq!(
        metrics
            .histogram(Phase::Check.metric_name())
            .map(|h| h.count()),
        Some(2)
    );
}
