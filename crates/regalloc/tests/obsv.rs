//! The ops observatory's crate-level contract:
//!
//! * **determinism quarantine** — a batch service with sampling AND
//!   alerting enabled (background sampler ticking fast, default rules
//!   live) produces allocations byte-identical to the serial pipeline at
//!   workers {1, 2, 4, 8};
//! * **queue-delay slope** — a synthetic rising-delay workload driven
//!   through the injected [`ManualClock`] pins the regression slope in
//!   the exact `/history` document shape;
//! * **flight visibility** — alert fire/clear transitions land in the
//!   flight recorder dump alongside the scheduling events.

use std::sync::Arc;

use ccra_analysis::FrequencyInfo;
use ccra_ir::{display_function, Program};
use ccra_machine::{CostModel, RegisterFile};
use ccra_regalloc::obsv::{
    Tier, E2E_HISTOGRAM, QUEUE_WAIT_HISTOGRAM, RULE_E2E_BURN, SERIES_QUEUE_DELAY_SLOPE,
};
use ccra_regalloc::trace::NoopSink;
use ccra_regalloc::{
    allocate_program_instrumented, AlertCondition, AlertRule, AlertState, AllocatorConfig,
    BatchConfig, BatchJob, BatchService, BatchStatus, Clock, ManualClock, MetricsRegistry,
    Observatory, ObsvConfig, ProgramAllocation,
};
use ccra_workloads::{random_program, FuzzConfig};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fuzz_program(seed: u64, functions: usize) -> Program {
    random_program(
        seed,
        &FuzzConfig {
            functions,
            stmts_per_fn: 12,
            max_loop_depth: 2,
            max_trips: 5,
        },
    )
}

fn serial_reference(program: &Program) -> ProgramAllocation {
    let freq = FrequencyInfo::profile(program).expect("profile runs");
    allocate_program_instrumented(
        program,
        &freq,
        RegisterFile::mips_full(),
        &AllocatorConfig::improved(),
        &CostModel::paper(),
        &mut NoopSink,
        &mut MetricsRegistry::disabled(),
    )
    .expect("serial allocation succeeds")
}

/// Sampling + alerting on never changes a single allocation byte, at any
/// worker count. The observatory runs in its production shape — a
/// background sampler thread on the wall clock, ticking every 5ms so it
/// demonstrably samples *during* the run — with the default alert rules
/// evaluated live.
#[test]
fn sampling_and_alerting_never_change_allocation_bytes() {
    let programs: Vec<(u64, Program)> = (0..4)
        .map(|i| (2000 + i, fuzz_program(2000 + i, 6)))
        .collect();
    let references: Vec<ProgramAllocation> =
        programs.iter().map(|(_, p)| serial_reference(p)).collect();

    for workers in WORKER_COUNTS {
        let service = BatchService::start(BatchConfig {
            workers,
            shard_workers: 2,
            queue_capacity: 8,
            obsv: Some(ObsvConfig {
                raw_interval_us: 5_000,
                sampler_thread: true,
                ..ObsvConfig::default()
            }),
            ..BatchConfig::default()
        });
        for (seed, program) in &programs {
            service
                .submit(BatchJob::new(
                    format!("fuzz-{seed}"),
                    program.clone(),
                    RegisterFile::mips_full(),
                    AllocatorConfig::improved(),
                ))
                .expect("submit accepted");
        }
        let handle = service.handle();
        let results = service.shutdown();
        assert_eq!(results.len(), programs.len());
        for (result, (seed, program)) in results.iter().zip(programs.iter()) {
            assert_eq!(
                result.status,
                BatchStatus::Ok,
                "workers={workers} seed={seed}"
            );
            let alloc = result
                .allocation
                .as_ref()
                .expect("ok result has allocation");
            let reference = &references[programs
                .iter()
                .position(|(s, _)| s == seed)
                .expect("seed known")];
            assert_eq!(
                alloc, reference,
                "workers={workers} seed={seed}: observatory changed the allocation"
            );
            for id in program.func_ids() {
                assert_eq!(
                    display_function(alloc.program.function(id)),
                    display_function(reference.program.function(id)),
                    "workers={workers} seed={seed}: body of {id:?} differs"
                );
            }
        }
        // The observatory genuinely ran: with a 5ms interval over a
        // multi-job batch it ticked at least once before shutdown joined
        // the sampler (0 ticks would make this a vacuous test).
        let obsv = handle.observatory().expect("observatory configured");
        assert!(
            obsv.ticks() >= 1,
            "workers={workers}: sampler never ticked ({} ticks)",
            obsv.ticks()
        );
    }
}

/// The acceptance pin: a synthetic rising-delay workload, clocked by the
/// injected [`ManualClock`], yields an exactly predictable queue-delay
/// slope in the `/history` document. Interval means rise 10_000us per 2s
/// tick → 5_000 us/s, recovered exactly because interval means are exact
/// (delta sum / delta count) and the regression is least-squares over an
/// exactly linear window.
#[test]
fn synthetic_rising_delay_pins_the_history_slope() {
    let clock = Arc::new(ManualClock::new());
    let obsv = Observatory::new(ObsvConfig {
        clock: clock.clone() as Arc<dyn Clock>,
        sampler_thread: false,
        ..ObsvConfig::default()
    });
    let mut m = MetricsRegistry::new();
    for i in 1..=20u64 {
        m.observe(QUEUE_WAIT_HISTOGRAM, 10_000 * i);
        clock.set(i * 2_000_000);
        obsv.tick(&m);
    }
    let doc = obsv
        .history_value(SERIES_QUEUE_DELAY_SLOPE, Tier::Raw)
        .expect("slope series exists");
    assert_eq!(
        doc.get("series").and_then(serde::json::Value::as_str),
        Some(SERIES_QUEUE_DELAY_SLOPE)
    );
    let points = match doc.get("points") {
        Some(serde::json::Value::Arr(a)) => a,
        other => panic!("points array expected, got {other:?}"),
    };
    assert_eq!(points.len(), 20, "one slope point per tick");
    let last = points.last().expect("non-empty");
    assert_eq!(
        last.get("ts_us").and_then(serde::json::Value::as_i64),
        Some(40_000_000)
    );
    let slope = last
        .get("value")
        .and_then(serde::json::Value::as_f64)
        .expect("slope value");
    assert!(
        (slope - 5_000.0).abs() < 1e-6,
        "pinned synthetic slope 5_000 us/s, got {slope}"
    );
    // The downsampled tier aggregated the first 15 ticks into one point.
    let ds = obsv
        .history(SERIES_QUEUE_DELAY_SLOPE, Tier::Downsampled)
        .expect("series exists");
    assert_eq!(ds.len(), 1);
}

/// Alert transitions are visible in the flight recorder: fire and clear
/// events, on the observatory's dedicated lane, in the same dump as the
/// scheduling events.
#[test]
fn alert_transitions_land_in_the_flight_recorder() {
    let clock = Arc::new(ManualClock::new());
    // An SLO-burn setup the test can steer: the default burn rule plus a
    // tiny SLO so any synthetic e2e observation can violate it. Rules are
    // evaluated against series derived from the service's own metrics, so
    // the steering is real traffic: submit jobs, then tick.
    let rule = AlertRule {
        name: RULE_E2E_BURN.to_string(),
        condition: AlertCondition::BurnRate {
            short_series: "derived:e2e_burn_short".to_string(),
            long_series: "derived:e2e_burn_long".to_string(),
            above: 2.0,
            clear_below: 1.0,
        },
        pending_us: 0,
        resolve_us: 0,
        critical: true,
    };
    let service = BatchService::start(BatchConfig {
        workers: 1,
        obsv: Some(ObsvConfig {
            clock: clock.clone() as Arc<dyn Clock>,
            sampler_thread: false,
            // Tiny SLO: every real completion (micros-scale at least)
            // counts as over-budget, so one batch of traffic fires the
            // burn rule deterministically.
            e2e_slo_us: 1,
            rules: Some(vec![rule]),
            ..ObsvConfig::default()
        }),
        ..BatchConfig::default()
    });
    let program = fuzz_program(77, 3);
    for i in 0..4 {
        service
            .submit(BatchJob::new(
                format!("job-{i}"),
                program.clone(),
                RegisterFile::mips_full(),
                AllocatorConfig::improved(),
            ))
            .expect("submit accepted");
    }
    let handle = service.handle();
    // Wait for the queue to drain so the tick's e2e delta is non-empty.
    while handle.queue_depth() > 0 || handle.in_flight() > 0 {
        std::thread::yield_now();
    }
    clock.set(2_000_000);
    let fired = handle.obsv_tick();
    assert!(
        fired.iter().any(|t| t.fired && t.rule == RULE_E2E_BURN),
        "burn rule fires after over-SLO traffic: {fired:?}"
    );
    assert_eq!(
        handle.observatory().unwrap().alert_state(RULE_E2E_BURN),
        Some(AlertState::Firing)
    );
    // Idle recovery: ticks with no completions read burn 0 → resolve.
    clock.set(4_000_000);
    for _ in 0..6 {
        clock.advance(2_000_000);
        handle.obsv_tick();
    }
    assert_eq!(
        handle.observatory().unwrap().alert_state(RULE_E2E_BURN),
        Some(AlertState::Inactive),
        "burn rule resolves once the storm interval ages out"
    );
    let dump = handle.flightrec_value().to_json();
    assert!(dump.contains("\"alert_fire\""), "fire event in flightrec");
    assert!(dump.contains("\"alert_clear\""), "clear event in flightrec");
    drop(service.shutdown());
    // Unused import silencer with semantic value: the burn series derives
    // from this histogram.
    assert_eq!(E2E_HISTOGRAM, "batch_e2e_micros");
}
