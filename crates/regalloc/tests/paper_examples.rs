//! The paper's worked examples (Figures 3, 5, and 8), encoded directly as
//! hand-built interference graphs and checked against the allocators.

use std::collections::HashMap;

use ccra_ir::{BlockId, FunctionBuilder, RegClass};
use ccra_machine::{RegisterFile, SaveKind};
use ccra_regalloc::{
    allocate_bank_chaitin, build_context, AllocatorConfig, BankResult, CallSite, FuncContext,
    InterferenceGraph, NodeInfo,
};

/// A synthetic context over hand-specified nodes and edges. The paper's
/// figures describe live ranges purely by their benefit functions and
/// interference, so that is all we populate.
fn synthetic_ctx(
    specs: &[(f64, f64, f64, &[u32])], // (spill, caller, callee, crossed sites)
    edges: &[(u32, u32)],
    callsites: usize,
    entry_freq: f64,
) -> FuncContext {
    let nodes: Vec<NodeInfo> = specs
        .iter()
        .map(|&(spill, caller, callee, crossed)| NodeInfo {
            class: RegClass::Int,
            spill_cost: spill,
            caller_cost: caller,
            callee_cost: callee,
            size: 1,
            calls_crossed: crossed.to_vec(),
            webs: vec![],
            is_spill_temp: false,
            defs: vec![],
            uses: vec![],
            param_vregs: vec![],
        })
        .collect();
    let mut graph = InterferenceGraph::new(nodes.len());
    for &(a, b) in edges {
        graph.add_edge(a, b);
    }
    // A dummy function supplies the (empty) web structure.
    let mut b = FunctionBuilder::new("synthetic");
    b.ret(None);
    let f = b.finish();
    let freq = ccra_analysis::FrequencyInfo::estimate(&{
        let mut p = ccra_ir::Program::new();
        let id = p.add_function(f.clone());
        p.set_main(id);
        p
    });
    let dummy = build_context(
        &f,
        freq.func(ccra_ir::FuncId(0)),
        &ccra_machine::CostModel::paper(),
    )
    .expect("context builds");
    FuncContext {
        nodes,
        graph,
        callsites: (0..callsites)
            .map(|i| CallSite {
                bb: BlockId(0),
                idx: i as u32,
                freq: 1.0,
            })
            .collect(),
        entry_freq,
        web_node: HashMap::new(),
        webs: dummy.webs,
    }
}

/// Total load/store operations *saved* by an assignment relative to
/// spilling everything: the benefit of the granted register kind.
fn savings(ctx: &FuncContext, result: &BankResult) -> f64 {
    result
        .colors
        .iter()
        .map(|(&n, reg)| {
            let node = &ctx.nodes[n as usize];
            match reg.kind {
                SaveKind::CallerSave => node.benefit_caller(),
                SaveKind::CalleeSave => node.benefit_callee(),
            }
        })
        .sum()
}

/// Figure 3: three mutually-interfering live ranges, all preferring
/// callee-save registers, with 2 callee-save + 1 caller-save registers.
/// The simplification *order* decides who gets the precious callee-save
/// registers: the best order saves 4100 load/store operations, the worst
/// 3200. Benefit-driven simplification must find the best one.
#[test]
fn figure_3_simplification_order() {
    // lr_x, lr_y: benefit_caller = 1000, benefit_callee = 2000.
    // lr_z:       benefit_caller =  100, benefit_callee =  200.
    // (spill costs chosen so the benefits come out exactly as in the paper)
    let ctx = synthetic_ctx(
        &[
            (3000.0, 2000.0, 1000.0, &[0]), // x
            (3000.0, 2000.0, 1000.0, &[0]), // y
            (300.0, 200.0, 100.0, &[0]),    // z
        ],
        &[(0, 1), (1, 2), (0, 2)],
        1,
        1.0,
    );
    let file = RegisterFile::new(7, 4, 2, 0); // bank: 9 int = 7 caller + 2 callee
                                              // Storage-class analysis alone decides kinds by benefit; with N large
                                              // enough everything is unconstrained, and without BS the removal order
                                              // is arbitrary (ascending ids: x, y, z — z ends on top and steals a
                                              // callee-save register).
    let sc_only = AllocatorConfig::with_improvements(true, false, false);
    let without_bs =
        allocate_bank_chaitin(&ctx, RegClass::Int, &file, &sc_only).expect("bank allocates");
    assert_eq!(
        savings(&ctx, &without_bs),
        2000.0 + 200.0 + 1000.0,
        "the paper's 3200"
    );

    let with_bs = AllocatorConfig::with_improvements(true, true, false);
    let best = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &with_bs).expect("bank allocates");
    assert_eq!(
        savings(&ctx, &best),
        2000.0 + 2000.0 + 100.0,
        "benefit-driven simplification finds the paper's 4100"
    );
}

/// Figure 4 (the priority-key comparison) lives in
/// `ccra-regalloc/src/node.rs` as `bs_key_strategies_match_figure_4`; this
/// test checks the end-to-end consequence: with the max-benefit key the
/// wrong live range can end on top of the stack.
#[test]
fn figure_4_key_choice_changes_savings() {
    // lr_x, lr_y: bc = 1800, be = 2000 (key1 = 2000, key2 = 200).
    // lr_z:       bc =  500, be = 1500 (key1 = 1500, key2 = 1000).
    let ctx = synthetic_ctx(
        &[
            (3800.0, 2000.0, 1800.0, &[0]),
            (3800.0, 2000.0, 1800.0, &[0]),
            (2000.0, 1500.0, 500.0, &[0]),
        ],
        &[(0, 1), (1, 2), (0, 2)],
        1,
        1.0,
    );
    let file = RegisterFile::new(7, 4, 2, 0);
    let key1 = AllocatorConfig {
        benefit_simplify: Some(ccra_regalloc::BsKey::MaxBenefit),
        ..AllocatorConfig::with_improvements(true, true, false)
    };
    let key2 = AllocatorConfig {
        benefit_simplify: Some(ccra_regalloc::BsKey::BenefitDelta),
        ..AllocatorConfig::with_improvements(true, true, false)
    };
    let r1 = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &key1).expect("bank allocates");
    let r2 = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &key2).expect("bank allocates");
    // Key 1 gives the callee-save registers to x and y: 2000+2000+500 = 4500.
    assert_eq!(savings(&ctx, &r1), 4500.0);
    // Key 2 protects z (its wrong-kind penalty is largest): 2000+1800+1500 = 5300.
    assert_eq!(savings(&ctx, &r2), 5300.0, "the paper's better allocation");
    assert!(savings(&ctx, &r2) > savings(&ctx, &r1));
}

/// Figure 5 (in spirit — the printed benefit table is partly illegible in
/// our source): five live ranges compete for one callee-save register
/// across a hot call. Without the preference decision, color-assignment
/// order lets a low-stakes live range take the callee-save register away
/// from the high-stakes one; the preference pass forces the cheap one to
/// caller-save preference and the savings jump.
#[test]
fn figure_5_preference_decision() {
    // ids: u=0 (huge callee benefit), t=1, x=2, y=3 (caller-preferring
    // fillers), z=4 (modest callee preference). u and z cross call site 0
    // and interfere; the fillers interfere with both.
    let specs: Vec<(f64, f64, f64, &[u32])> = vec![
        (4000.0, 3900.0, 100.0, &[0]), // u: bc=100, be=3900
        (1200.0, 200.0, 1100.0, &[]),  // t: bc=1000, be=100
        (1200.0, 200.0, 1100.0, &[]),  // x
        (1200.0, 200.0, 1100.0, &[]),  // y
        (600.0, 300.0, 100.0, &[0]),   // z: bc=300, be=500
    ];
    let edges = [(0, 4), (0, 1), (0, 2), (0, 3), (4, 1), (4, 2), (4, 3)];
    let ctx = synthetic_ctx(&specs, &edges, 1, 1.0);
    let file = RegisterFile::new(6, 4, 1, 0); // one precious callee-save reg

    // SC without PR: the arbitrary (ascending-id) removal order pops z
    // first; z grabs the callee-save register and u is left with
    // caller-save.
    let without_pr = allocate_bank_chaitin(
        &ctx,
        RegClass::Int,
        &file,
        &AllocatorConfig::with_improvements(true, false, false),
    )
    .expect("bank allocates");
    // With PR: z is the cheaper of the two candidates (caller_cost 300 vs
    // 3900), so it is forced to prefer caller-save and u gets the register.
    let with_pr = allocate_bank_chaitin(
        &ctx,
        RegClass::Int,
        &file,
        &AllocatorConfig::with_improvements(true, false, true),
    )
    .expect("bank allocates");
    let (s_without, s_with) = (savings(&ctx, &without_pr), savings(&ctx, &with_pr));
    assert!(
        s_with > s_without + 3000.0,
        "preference decision must rescue u: {s_without} -> {s_with}"
    );
    assert_eq!(
        with_pr.colors[&0].kind,
        SaveKind::CalleeSave,
        "u gets the callee-save register"
    );
    assert_eq!(
        with_pr.colors[&4].kind,
        SaveKind::CallerSave,
        "z is forced to caller-save"
    );
}

/// Figure 8: a four-cycle with N = 2 (1 callee-save + 1 caller-save).
/// Chaitin-style simplification blocks (every degree is 2) and spills the
/// cheapest live range; optimistic coloring colors all four — and parks
/// the high-caller-cost one in the caller-save register, an inferior
/// result once call cost is counted.
#[test]
fn figure_8_optimistic_wrong_kind() {
    // The paper's graph is a 4-cycle with N = 2 (1 callee + 1 caller
    // register); our ABI minimum is 6 caller registers, so the instance is
    // scaled up: the same 4-cycle (x, y, z, w) plus six hot pressure nodes
    // forming a clique with everything, against a bank of 8 (7 caller + 1
    // callee). Every degree is ≥ 8, so Chaitin blocks exactly as in the
    // figure, while the graph stays 8-colorable for optimistic coloring.
    //
    // x, y, w: healthy crossing values; z: cold (spill cost 200) with a
    // huge caller-save cost — the live range optimistic coloring should
    // NOT rescue.
    let mut specs: Vec<(f64, f64, f64, &[u32])> = vec![
        (2000.0, 900.0, 400.0, &[0]),
        (2000.0, 900.0, 400.0, &[0]),
        (200.0, 5000.0, 400.0, &[0]),
        (2000.0, 900.0, 400.0, &[0]),
    ];
    // Six hot pressure nodes forming a clique with everything.
    for _ in 0..6 {
        specs.push((50_000.0, 100.0, 400.0, &[0]));
    }
    let mut edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
    for p in 4..10u32 {
        for q in 0..10u32 {
            if p != q {
                edges.push((p.min(q), p.max(q)));
            }
        }
    }
    let ctx = synthetic_ctx(&specs, &edges, 1, 1.0);
    // Bank of 8: 7 caller + 1 callee. Cycle nodes have degree 2 + 6 = 8 ≥ 8,
    // pressure nodes have degree 9 ≥ 8: simplification blocks immediately.
    let file = RegisterFile::new(7, 4, 1, 0);

    let chaitin = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::base())
        .expect("bank allocates");
    assert!(
        chaitin.spilled.contains(&2),
        "Chaitin spills the cheapest live range (z): {:?}",
        chaitin.spilled
    );

    let optimistic =
        allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::optimistic())
            .expect("bank allocates");
    assert!(optimistic.spilled.is_empty(), "the graph is 8-colorable");
    let z_reg = optimistic.colors[&2];
    assert_eq!(
        z_reg.kind,
        SaveKind::CallerSave,
        "optimistic parks z in a caller-save register"
    );
    // The paper's point: z in a caller-save register costs 5000 operations
    // where spilling it costs 200 — optimistic coloring made it worse.
    let z = &ctx.nodes[2];
    assert!(z.caller_cost > z.spill_cost * 10.0);
}
