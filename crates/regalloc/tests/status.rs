//! The live status endpoint, end to end over a real TCP socket: a
//! [`BatchService`] works through real submissions while a
//! [`StatusServer`] bound to an ephemeral port serves
//!
//! * `/metrics` — Prometheus text whose counters agree with the finished
//!   jobs (every sample line parses as `name value`);
//! * `/healthz` — a liveness probe;
//! * `/status` — JSON whose `jobs` array matches the handle's live
//!   [`BatchStatus`] view, failed job included.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ccra_ir::Program;
use ccra_machine::RegisterFile;
use ccra_regalloc::{
    AllocatorConfig, BatchConfig, BatchJob, BatchService, BatchStatus, StatusServer,
};
use ccra_workloads::{random_program, FuzzConfig};
use serde::json::Value;

/// One HTTP/1.0 GET: status code, raw headers, body.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to status server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line carries a code");
    (code, head.to_string(), body.to_string())
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn endpoint_serves_live_service_state_over_a_real_socket() {
    let service = BatchService::start(BatchConfig {
        workers: 2,
        queue_capacity: 8,
        shard_workers: 1,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    let server = StatusServer::bind(service.handle(), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    // Two healthy jobs and one that cannot be profiled (no main).
    for (i, seed) in [5u64, 23].iter().enumerate() {
        service
            .submit(BatchJob::new(
                format!("fuzz-{i}"),
                random_program(
                    *seed,
                    &FuzzConfig {
                        functions: 4,
                        stmts_per_fn: 10,
                        max_loop_depth: 1,
                        max_trips: 4,
                    },
                ),
                RegisterFile::new(8, 6, 2, 2),
                AllocatorConfig::improved(),
            ))
            .expect("queue open");
    }
    service
        .submit(BatchJob::new(
            "no-main",
            Program::new(),
            RegisterFile::new(8, 6, 2, 2),
            AllocatorConfig::base(),
        ))
        .expect("queue open");
    wait_until("all three jobs to complete", || {
        handle.statuses().len() == 3 && handle.in_flight() == 0
    });

    // /healthz: a plain liveness probe.
    let (code, head, body) = http_get(addr, "/healthz");
    assert_eq!(code, 200);
    assert!(head.contains("Connection: close"), "{head}");
    assert_eq!(body, "ok\n");

    // /metrics: Prometheus text exposition, counters matching the jobs.
    let (code, head, body) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert!(head.contains("text/plain"), "{head}");
    assert!(
        body.contains("# TYPE batch_jobs_submitted_total counter"),
        "{body}"
    );
    assert!(body.contains("batch_jobs_submitted_total 3"), "{body}");
    assert!(body.contains("batch_jobs_completed_total 2"), "{body}");
    assert!(body.contains("batch_jobs_failed_total 1"), "{body}");
    for gauge in [
        "batch_queue_depth",
        "batch_in_flight",
        "batch_queue_occupancy",
    ] {
        assert!(body.contains(gauge), "scrape gauge {gauge} served: {body}");
    }
    // Every sample line is `name value` (histogram series included) — the
    // shape a Prometheus scraper parses.
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let mut parts = line.split_whitespace();
        let (name, value) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        assert!(
            !name.is_empty() && value.parse::<f64>().is_ok() && parts.next().is_none(),
            "unparseable sample line: {line:?}"
        );
    }

    // /status: JSON matching the handle's live view.
    let (code, head, body) = http_get(addr, "/status");
    assert_eq!(code, 200);
    assert!(head.contains("application/json"), "{head}");
    let value = serde::json::parse(body.trim()).expect("status body is valid JSON");
    assert_eq!(value.get("queue_depth").and_then(Value::as_i64), Some(0));
    assert_eq!(value.get("in_flight").and_then(Value::as_i64), Some(0));
    assert_eq!(value.get("completed").and_then(Value::as_i64), Some(3));
    let Some(Value::Arr(jobs)) = value.get("jobs") else {
        panic!("status document has a jobs array: {body}");
    };
    let live = handle.statuses();
    assert_eq!(jobs.len(), live.len());
    for (job, (id, name, status)) in jobs.iter().zip(&live) {
        assert_eq!(job.get("id").and_then(Value::as_i64), Some(*id as i64));
        assert_eq!(job.get("name").and_then(Value::as_str), Some(name.as_str()));
        assert_eq!(
            job.get("status").and_then(Value::as_str),
            Some(status.label()),
            "wire status matches the live BatchStatus for {name}"
        );
        match status {
            BatchStatus::Failed { error } => {
                let wire_error = job.get("error").and_then(Value::as_str);
                assert_eq!(wire_error, Some(error.as_str()));
            }
            _ => assert!(job.get("error").is_none(), "healthy jobs carry no error"),
        }
    }

    // Unknown routes and methods stay polite.
    assert_eq!(http_get(addr, "/nope").0, 404);

    server.shutdown();
    let results = service.shutdown();
    assert_eq!(results.len(), 3);
}

/// Starts a small service with one completed healthy job and one failed
/// job, plus a status server on an ephemeral port.
fn served_service() -> (BatchService, StatusServer, SocketAddr) {
    let service = BatchService::start(BatchConfig {
        workers: 1,
        queue_capacity: 8,
        ..BatchConfig::default()
    });
    let handle = service.handle();
    service
        .submit(BatchJob::new(
            "healthy",
            random_program(
                9,
                &FuzzConfig {
                    functions: 3,
                    stmts_per_fn: 8,
                    max_loop_depth: 1,
                    max_trips: 4,
                },
            ),
            RegisterFile::new(8, 6, 2, 2),
            AllocatorConfig::improved(),
        ))
        .expect("queue open");
    service
        .submit(BatchJob::new(
            "no-main",
            Program::new(),
            RegisterFile::new(8, 6, 2, 2),
            AllocatorConfig::base(),
        ))
        .expect("queue open");
    wait_until("both jobs to complete", || {
        handle.statuses().len() == 2 && handle.in_flight() == 0
    });
    let server = StatusServer::bind(service.handle(), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    (service, server, addr)
}

/// Sends raw bytes (closing the write half so the server sees EOF) and
/// returns the raw response text.
fn http_raw(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to status server");
    stream.write_all(request).expect("write request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("close the write half");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response");
    response
}

/// Parses `Content-Length` out of a raw response head.
fn content_length(head: &str) -> usize {
    head.lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("response head carries Content-Length: {head}"))
}

#[test]
fn hardened_against_malformed_and_oversized_requests() {
    let (service, server, addr) = served_service();

    // A garbage request line is a 400, not a hang or a panic.
    let resp = http_raw(addr, b"nonsense\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.0 400"), "{resp}");

    // A one-token request line too.
    let resp = http_raw(addr, b"GET\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.0 400"), "{resp}");

    // A non-GET method is refused politely.
    let resp = http_raw(addr, b"DELETE /status HTTP/1.0\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");

    // Unknown paths are 404 with a body.
    let (code, head, body) = http_get(addr, "/definitely/not/here");
    assert_eq!(code, 404);
    assert_eq!(content_length(&head), body.len());

    // A request head larger than the cap is answered 431 and dropped.
    let mut oversized = Vec::from(&b"GET /status HTTP/1.0\r\n"[..]);
    for i in 0..600 {
        oversized.extend_from_slice(format!("X-Padding-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    oversized.extend_from_slice(b"\r\n");
    assert!(
        oversized.len() > 8 * 1024,
        "payload exceeds MAX_REQUEST_BYTES"
    );
    let resp = http_raw(addr, &oversized);
    assert!(resp.starts_with("HTTP/1.0 431"), "{resp}");

    // The server survives all of the above and still answers.
    assert_eq!(http_get(addr, "/healthz").0, 200);

    server.shutdown();
    service.shutdown();
}

#[test]
fn every_response_declares_an_honest_content_length() {
    let (service, server, addr) = served_service();
    for path in [
        "/healthz",
        "/metrics",
        "/status",
        "/trace/0",
        "/trace/999",
        "/debug/flightrec",
        "/nope",
    ] {
        let (_, head, body) = http_get(addr, path);
        assert_eq!(
            content_length(&head),
            body.len(),
            "Content-Length honest on {path}"
        );
    }
    server.shutdown();
    service.shutdown();
}

#[test]
fn concurrent_connections_are_each_served_completely() {
    let (service, server, addr) = served_service();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let path = if i % 2 == 0 { "/status" } else { "/metrics" };
                http_get(addr, path)
            })
        })
        .collect();
    for (i, t) in threads.into_iter().enumerate() {
        let (code, head, body) = t.join().expect("client thread survives");
        assert_eq!(code, 200, "connection {i}");
        assert_eq!(content_length(&head), body.len(), "connection {i}");
        assert!(!body.is_empty(), "connection {i}");
    }
    server.shutdown();
    service.shutdown();
}

#[test]
fn trace_and_flightrec_routes_serve_observability_documents() {
    let (service, server, addr) = served_service();

    // /trace/<id> serves the Chrome-trace rendering of a kept request
    // trace; the req- prefix is accepted too.
    for path in ["/trace/0", "/trace/req-0"] {
        let (code, head, body) = http_get(addr, path);
        assert_eq!(code, 200, "{path}");
        assert!(head.contains("application/json"), "{head}");
        let doc = serde::json::parse(body.trim()).expect("trace body is valid JSON");
        assert_eq!(
            doc.get("requestId").and_then(Value::as_str),
            Some("req-0"),
            "{path}"
        );
        assert!(
            matches!(doc.get("traceEvents"), Some(Value::Arr(events)) if !events.is_empty()),
            "{path}: traceEvents populated"
        );
    }

    // Unknown ids and junk ids are 404s.
    assert_eq!(http_get(addr, "/trace/999").0, 404);
    assert_eq!(http_get(addr, "/trace/banana").0, 404);

    // /debug/flightrec serves the live ring plus the failed job's dump.
    let (code, head, body) = http_get(addr, "/debug/flightrec");
    assert_eq!(code, 200);
    assert!(head.contains("application/json"), "{head}");
    let doc = serde::json::parse(body.trim()).expect("flightrec body is valid JSON");
    assert!(doc.get("live").is_some(), "{body}");
    let Some(Value::Arr(dumps)) = doc.get("dumps") else {
        panic!("flightrec document has a dumps array: {body}");
    };
    assert_eq!(dumps.len(), 1, "the failed job dumped");
    assert_eq!(dumps[0].get("id").and_then(Value::as_i64), Some(1));

    server.shutdown();
    service.shutdown();
}
