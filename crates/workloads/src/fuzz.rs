//! Random terminating programs for property-based testing.
//!
//! [`random_program`] builds arbitrary-but-valid programs: every register
//! is defined before use, every loop is counted, and the call graph is
//! acyclic — so the interpreter always terminates and the verifier always
//! passes. Property tests across the workspace use these to check that
//! register allocation preserves semantics under every allocator.

use ccra_ir::{BinOp, Callee, CmpOp, FuncId, FunctionBuilder, Program, RegClass, UnOp, VReg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size knobs for [`random_program`].
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of functions (≥ 1; the last one is `main`).
    pub functions: usize,
    /// Approximate statements per function.
    pub stmts_per_fn: usize,
    /// Maximum loop nesting depth.
    pub max_loop_depth: usize,
    /// Maximum trip count per loop.
    pub max_trips: i64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            functions: 3,
            stmts_per_fn: 25,
            max_loop_depth: 2,
            max_trips: 8,
        }
    }
}

struct Gen {
    rng: StdRng,
    ints: Vec<VReg>,
    floats: Vec<VReg>,
}

impl Gen {
    fn int(&mut self, b: &mut FunctionBuilder) -> VReg {
        if self.ints.is_empty() || self.rng.gen_bool(0.3) {
            let v = b.new_vreg(RegClass::Int);
            b.iconst(v, self.rng.gen_range(-50..50));
            self.ints.push(v);
            v
        } else {
            self.ints[self.rng.gen_range(0..self.ints.len())]
        }
    }

    fn float(&mut self, b: &mut FunctionBuilder) -> VReg {
        if self.floats.is_empty() || self.rng.gen_bool(0.3) {
            let v = b.new_vreg(RegClass::Float);
            b.fconst(v, self.rng.gen_range(-4.0..4.0));
            self.floats.push(v);
            v
        } else {
            self.floats[self.rng.gen_range(0..self.floats.len())]
        }
    }
}

fn emit_stmt(g: &mut Gen, b: &mut FunctionBuilder, callees: &[FuncId]) {
    match g.rng.gen_range(0..10) {
        0..=3 => {
            let (x, y) = (g.int(b), g.int(b));
            let dst = if g.rng.gen_bool(0.5) && !g.ints.is_empty() {
                g.ints[g.rng.gen_range(0..g.ints.len())]
            } else {
                let v = b.new_vreg(RegClass::Int);
                g.ints.push(v);
                v
            };
            let op = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Div,
                BinOp::Rem,
            ][g.rng.gen_range(0..10)];
            b.binary(op, dst, x, y);
        }
        4..=5 => {
            let (x, y) = (g.float(b), g.float(b));
            let dst = b.new_vreg(RegClass::Float);
            g.floats.push(dst);
            let op = [BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FDiv][g.rng.gen_range(0..4)];
            b.binary(op, dst, x, y);
        }
        6 => {
            let x = g.int(b);
            let dst = b.new_vreg(RegClass::Int);
            g.ints.push(dst);
            b.unary([UnOp::Neg, UnOp::Not][g.rng.gen_range(0..2)], dst, x);
        }
        7 => {
            let src = g.int(b);
            let dst = b.new_vreg(RegClass::Int);
            g.ints.push(dst);
            b.copy(dst, src);
        }
        8 => {
            let x = g.float(b);
            let dst = b.new_vreg(RegClass::Int);
            g.ints.push(dst);
            b.unary(UnOp::FloatToInt, dst, x);
        }
        _ => {
            let arg = g.int(b);
            let ret = b.new_vreg(RegClass::Int);
            g.ints.push(ret);
            if callees.is_empty() || g.rng.gen_bool(0.4) {
                b.call(Callee::External("ext"), vec![arg], Some(ret));
            } else {
                let f = callees[g.rng.gen_range(0..callees.len())];
                b.call(Callee::Internal(f), vec![arg], Some(ret));
            }
        }
    }
}

fn emit_region(
    g: &mut Gen,
    b: &mut FunctionBuilder,
    callees: &[FuncId],
    stmts: usize,
    depth: usize,
    config: &FuzzConfig,
) {
    let mut remaining = stmts;
    while remaining > 0 {
        let choice = g.rng.gen_range(0..10);
        if choice == 0 && depth < config.max_loop_depth && remaining >= 4 {
            // A counted loop around a sub-region.
            let body_stmts = g.rng.gen_range(1..=remaining.min(6));
            remaining -= body_stmts;
            let i = b.new_vreg(RegClass::Int);
            let n = b.new_vreg(RegClass::Int);
            let one = b.new_vreg(RegClass::Int);
            b.iconst(i, 0);
            b.iconst(n, g.rng.gen_range(1..=config.max_trips));
            b.iconst(one, 1);
            let head = b.reserve_block();
            let body = b.reserve_block();
            let exit = b.reserve_block();
            b.jump(head);
            b.switch_to(head);
            let c = b.new_vreg(RegClass::Int);
            b.cmp(CmpOp::Lt, c, i, n);
            b.branch(c, body, exit);
            b.switch_to(body);
            // Loop-local values must not leak to the outer scope as "maybe
            // defined": snapshot and restore the pools.
            let (saved_i, saved_f) = (g.ints.clone(), g.floats.clone());
            emit_region(g, b, callees, body_stmts, depth + 1, config);
            g.ints = saved_i;
            g.floats = saved_f;
            b.binary(BinOp::Add, i, i, one);
            b.jump(head);
            b.switch_to(exit);
        } else if choice == 1 && remaining >= 3 {
            // An if/else diamond.
            let arm_stmts = g.rng.gen_range(1..=remaining.min(4));
            remaining -= arm_stmts;
            let c = g.int(b);
            let t = b.reserve_block();
            let e = b.reserve_block();
            let j = b.reserve_block();
            b.branch(c, t, e);
            let (saved_i, saved_f) = (g.ints.clone(), g.floats.clone());
            b.switch_to(t);
            emit_region(g, b, callees, arm_stmts, depth, config);
            b.jump(j);
            g.ints = saved_i.clone();
            g.floats = saved_f.clone();
            b.switch_to(e);
            emit_region(g, b, callees, arm_stmts, depth, config);
            b.jump(j);
            g.ints = saved_i;
            g.floats = saved_f;
            b.switch_to(j);
        } else {
            emit_stmt(g, b, callees);
            remaining -= 1;
        }
    }
}

/// Builds a random, verified, terminating program.
pub fn random_program(seed: u64, config: &FuzzConfig) -> Program {
    let mut program = Program::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut callees: Vec<FuncId> = Vec::new();
    for fi in 0..config.functions.max(1) {
        let is_main = fi + 1 == config.functions.max(1);
        let name = if is_main {
            "main".to_string()
        } else {
            format!("f{fi}")
        };
        let mut b = FunctionBuilder::new(name);
        let mut g = Gen {
            rng: StdRng::seed_from_u64(rng.gen()),
            ints: vec![],
            floats: vec![],
        };
        // 0-2 int parameters.
        let nparams = g.rng.gen_range(0..=2);
        let params: Vec<VReg> = (0..nparams).map(|_| b.new_vreg(RegClass::Int)).collect();
        g.ints.extend(params.iter().copied());
        b.set_params(params);
        emit_region(&mut g, &mut b, &callees, config.stmts_per_fn, 0, config);
        let ret = g.int(&mut b);
        b.ret(Some(ret));
        let id = program.add_function(b.finish());
        if is_main {
            program.set_main(id);
        } else {
            callees.push(id);
        }
    }
    program
        .verify()
        .unwrap_or_else(|e| panic!("random program (seed {seed}) failed verification: {e}"));
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_analysis::{run, InterpConfig};

    #[test]
    fn random_programs_verify_and_terminate() {
        for seed in 0..30 {
            let p = random_program(seed, &FuzzConfig::default());
            let stats =
                run(&p, &InterpConfig::default()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(stats.steps > 0);
        }
    }

    #[test]
    fn random_programs_are_deterministic() {
        for seed in [7, 99] {
            let a = random_program(seed, &FuzzConfig::default());
            let b = random_program(seed, &FuzzConfig::default());
            let ra = run(&a, &InterpConfig::default()).unwrap();
            let rb = run(&b, &InterpConfig::default()).unwrap();
            assert_eq!(ra.result, rb.result);
            assert_eq!(ra.steps, rb.steps);
        }
    }

    #[test]
    fn bigger_configs_make_bigger_programs() {
        let small = random_program(
            1,
            &FuzzConfig {
                stmts_per_fn: 5,
                ..Default::default()
            },
        );
        let big = random_program(
            1,
            &FuzzConfig {
                stmts_per_fn: 80,
                ..Default::default()
            },
        );
        assert!(big.num_insts() > small.num_insts());
    }
}
