//! Synthetic SPEC92-like workloads for the call-cost register-allocation
//! experiments.
//!
//! The paper evaluates on fourteen SPEC92 programs compiled by cmcc. We
//! have neither cmcc nor the SPEC sources, so this crate generates fourteen
//! deterministic IR programs that reproduce each benchmark's
//! *register-allocation-relevant* structure: loop nesting, per-bank
//! register pressure, call-site placement (hot vs cold paths), and the
//! reference density of call-crossing live ranges. The paper's own
//! characterisations anchor each shape (tomcatv "consists of only one big
//! function and no calls"; fpppp is dominated by enormous straight-line
//! floating-point blocks; li and sc are call-heavy interpreters; and so
//! on — see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use ccra_workloads::{spec_program, SpecProgram};
//! use ccra_analysis::FrequencyInfo;
//!
//! let program = spec_program(SpecProgram::Tomcatv);
//! program.verify()?;
//! let profile = FrequencyInfo::profile(&program).expect("workloads terminate");
//! assert_eq!(profile.func(program.main().unwrap()).invocations, 1.0);
//! # Ok::<(), ccra_ir::VerifyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
mod programs;
mod shape;

pub use fuzz::{random_program, FuzzConfig};
pub use shape::Shaper;

use ccra_ir::Program;

/// A scale factor for workload sizes: `Scale(1.0)` is the default
/// experiment size; smaller values shrink loop trip counts proportionally
/// (useful for fast tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

/// The fourteen SPEC92 programs of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SpecProgram {
    Alvinn,
    Compress,
    Doduc,
    Ear,
    Eqntott,
    Espresso,
    Fpppp,
    Gcc,
    Li,
    Matrix300,
    Nasa7,
    Sc,
    Spice,
    Tomcatv,
}

impl SpecProgram {
    /// All fourteen programs, in alphabetical order.
    pub const ALL: [SpecProgram; 14] = [
        SpecProgram::Alvinn,
        SpecProgram::Compress,
        SpecProgram::Doduc,
        SpecProgram::Ear,
        SpecProgram::Eqntott,
        SpecProgram::Espresso,
        SpecProgram::Fpppp,
        SpecProgram::Gcc,
        SpecProgram::Li,
        SpecProgram::Matrix300,
        SpecProgram::Nasa7,
        SpecProgram::Sc,
        SpecProgram::Spice,
        SpecProgram::Tomcatv,
    ];

    /// The SPEC92 benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            SpecProgram::Alvinn => "alvinn",
            SpecProgram::Compress => "compress",
            SpecProgram::Doduc => "doduc",
            SpecProgram::Ear => "ear",
            SpecProgram::Eqntott => "eqntott",
            SpecProgram::Espresso => "espresso",
            SpecProgram::Fpppp => "fpppp",
            SpecProgram::Gcc => "gcc",
            SpecProgram::Li => "li",
            SpecProgram::Matrix300 => "matrix300",
            SpecProgram::Nasa7 => "nasa7",
            SpecProgram::Sc => "sc",
            SpecProgram::Spice => "spice",
            SpecProgram::Tomcatv => "tomcatv",
        }
    }

    /// The improvement class the paper sorts this program into (Section 7):
    ///
    /// 1. every technique contributes;
    /// 2. only storage-class analysis has a dramatic effect;
    /// 3. preference decision makes no difference;
    /// 4. no technique matters (negligible call cost).
    pub fn paper_class(self) -> u8 {
        match self {
            SpecProgram::Nasa7 | SpecProgram::Ear => 1,
            SpecProgram::Li | SpecProgram::Sc | SpecProgram::Matrix300 => 2,
            SpecProgram::Eqntott
            | SpecProgram::Espresso
            | SpecProgram::Compress
            | SpecProgram::Spice
            | SpecProgram::Fpppp
            | SpecProgram::Doduc => 3,
            SpecProgram::Tomcatv => 4,
            // The paper does not classify the remaining programs explicitly;
            // they behave like class 3.
            SpecProgram::Alvinn | SpecProgram::Gcc => 3,
        }
    }
}

impl std::fmt::Display for SpecProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a workload at the default experiment scale.
pub fn spec_program(program: SpecProgram) -> Program {
    programs::build(program, Scale::default())
}

/// Builds a workload at a reduced (or enlarged) scale.
pub fn spec_program_scaled(program: SpecProgram, scale: Scale) -> Program {
    programs::build(program, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_analysis::{run, FrequencyInfo, InterpConfig};

    const TEST_SCALE: Scale = Scale(0.1);

    #[test]
    fn all_programs_verify_and_terminate() {
        for prog in SpecProgram::ALL {
            let p = spec_program_scaled(prog, TEST_SCALE);
            p.verify().unwrap_or_else(|e| panic!("{prog}: {e}"));
            let stats = run(&p, &InterpConfig::default()).unwrap_or_else(|e| panic!("{prog}: {e}"));
            assert!(
                stats.steps > 100,
                "{prog} too trivial: {} steps",
                stats.steps
            );
            assert_eq!(stats.total_overhead(), 0, "{prog}: pre-allocation overhead");
        }
    }

    #[test]
    fn programs_are_deterministic() {
        for prog in [SpecProgram::Eqntott, SpecProgram::Fpppp, SpecProgram::Gcc] {
            let a = run(
                &spec_program_scaled(prog, TEST_SCALE),
                &InterpConfig::default(),
            )
            .unwrap();
            let b = run(
                &spec_program_scaled(prog, TEST_SCALE),
                &InterpConfig::default(),
            )
            .unwrap();
            assert_eq!(a.result, b.result, "{prog}");
            assert_eq!(a.steps, b.steps, "{prog}");
        }
    }

    #[test]
    fn tomcatv_is_one_function_no_calls() {
        let p = spec_program_scaled(SpecProgram::Tomcatv, TEST_SCALE);
        assert_eq!(p.num_functions(), 1);
        let f = p.function(p.main().unwrap());
        assert!(f.call_sites().is_empty());
    }

    #[test]
    fn call_heavy_programs_have_hot_functions() {
        for prog in [SpecProgram::Eqntott, SpecProgram::Li, SpecProgram::Sc] {
            let p = spec_program_scaled(prog, TEST_SCALE);
            let freq = FrequencyInfo::profile(&p).unwrap();
            let max_inv = p
                .func_ids()
                .map(|id| freq.func(id).invocations)
                .fold(0.0f64, f64::max);
            assert!(
                max_inv > 50.0,
                "{prog}: hottest function invoked {max_inv} times"
            );
        }
    }

    #[test]
    fn scaling_shrinks_execution() {
        let small = run(
            &spec_program_scaled(SpecProgram::Eqntott, Scale(0.05)),
            &InterpConfig::default(),
        )
        .unwrap();
        let large = run(
            &spec_program_scaled(SpecProgram::Eqntott, Scale(0.2)),
            &InterpConfig::default(),
        )
        .unwrap();
        assert!(large.steps > small.steps * 2);
    }

    #[test]
    fn names_and_classes() {
        assert_eq!(SpecProgram::Eqntott.name(), "eqntott");
        assert_eq!(SpecProgram::Tomcatv.paper_class(), 4);
        assert_eq!(SpecProgram::Nasa7.paper_class(), 1);
        assert_eq!(SpecProgram::ALL.len(), 14);
        assert_eq!(format!("{}", SpecProgram::Fpppp), "fpppp");
    }
}
