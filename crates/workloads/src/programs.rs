//! The fourteen synthetic SPEC92-like workload programs.
//!
//! Each program reproduces the *register-allocation-relevant* structure the
//! paper describes or implies for its SPEC92 counterpart — loop nesting,
//! register pressure per bank, call-site placement (hot path vs cold path),
//! and the reference density of call-crossing live ranges — not the
//! original computation. See `DESIGN.md` for the substitution argument.

use ccra_ir::{BinOp, FuncId, Program, RegClass, VReg};

use crate::shape::Shaper;
use crate::{Scale, SpecProgram};

fn trips(scale: Scale, n: i64) -> i64 {
    ((n as f64 * scale.0).round() as i64).max(2)
}

/// A hot leaf/near-leaf function exhibiting the paper's central scenario:
/// live ranges on the *most frequently executed path* that also cross call
/// sites on a *rarely executed* path.
///
/// The `cross_set` values are hot (defined at entry, folded after the
/// conditional join on every invocation) and live across the rare path's
/// calls. The base allocator sees "crosses calls" and prefers callee-save
/// registers — paying an entry/exit save/restore pair on *every*
/// invocation. The improved allocator compares benefits and picks
/// caller-save registers, paying only around the rare calls.
#[allow(clippy::too_many_arguments)]
fn hot_fn_with_cold_path(
    p: &mut Program,
    name: &'static str,
    seed: u64,
    class: RegClass,
    common_set: usize,
    common_ops: usize,
    cross_set: usize,
    cold_calls: usize,
    rare_mod: i64,
    work: (i64, usize),
) -> FuncId {
    let mut s = Shaper::new(name, seed);
    let par = s.int_params(1)[0];

    // Hot values that will cross the rare calls.
    let (cross_i, cross_f): (Vec<VReg>, Vec<VReg>) = match class {
        RegClass::Int => (s.int_set(cross_set), vec![]),
        RegClass::Float => (vec![], s.float_set(cross_set)),
    };

    // The hot common path's own working set.
    let acc = s.int_acc();
    let facc = s.float_acc();
    let set: Vec<VReg> = match class {
        RegClass::Int => s.int_set(common_set),
        RegClass::Float => s.float_set(common_set),
    };

    s.cond_mod(
        par,
        rare_mod,
        |s| {
            // Rare path: the calls the crossing values are live over.
            for c in 0..cold_calls {
                let names = ["aux0", "aux1", "aux2", "aux3"];
                s.call_ext(names[c % names.len()], vec![par]);
            }
        },
        |s| {
            // Common path: plain compute over the local working set.
            match class {
                RegClass::Int => {
                    s.fold_int(acc, &set, common_ops);
                    let t = s.int_chain(par, 3);
                    s.b.binary(BinOp::Add, acc, acc, t);
                }
                RegClass::Float => {
                    s.fold_float(facc, &set, common_ops);
                    let t = s.float_chain(facc, 2);
                    s.b.binary(BinOp::FAdd, facc, facc, t);
                }
            }
        },
    );
    // Useful work: keeps the overhead share of total cycles realistic
    // (real hot functions compute something).
    let (work_trips, work_ops) = work;
    if work_trips > 0 {
        match class {
            RegClass::Int => s.work_loop_int(acc, &set, work_trips, work_ops),
            RegClass::Float => s.work_loop_float(facc, &set, work_trips, work_ops),
        }
    }
    // The crossing values are referenced on every invocation *after* the
    // join, which makes every one of them live across the rare calls.
    match class {
        RegClass::Int => s.fold_each_int(acc, &cross_i),
        RegClass::Float => s.fold_each_float(facc, &cross_f),
    }
    let ret = match class {
        RegClass::Int => {
            s.b.binary(BinOp::Add, acc, acc, par);
            acc
        }
        RegClass::Float => {
            let r = s.float_to_int(facc);
            let out = s.b.new_vreg(RegClass::Int);
            s.b.binary(BinOp::Add, out, r, par);
            out
        }
    };
    p.add_function(s.finish_ret(Some(ret)))
}

/// A small pure leaf: params in, arithmetic, result out. No calls.
fn small_leaf(p: &mut Program, name: &'static str, seed: u64, pressure: usize) -> FuncId {
    let mut s = Shaper::new(name, seed);
    let par = s.int_params(2);
    let set = s.int_set(pressure);
    let acc = s.int_acc();
    s.b.binary(BinOp::Add, acc, par[0], par[1]);
    s.fold_int(acc, &set, pressure * 2);
    let t = s.int_chain(acc, 2);
    p.add_function(s.finish_ret(Some(t)))
}

/// A driver main: a loop of `n` iterations calling `hot` each time, with a
/// working set of its own crossing the (hot) call site.
fn driver_main(p: &mut Program, seed: u64, n: i64, hot: FuncId, main_set: usize) -> FuncId {
    let mut s = Shaper::new("main", seed);
    let set = s.int_set(main_set);
    let acc = s.int_acc();
    s.counted_loop(n, |s, i| {
        let r = s.b.new_vreg(RegClass::Int);
        s.call_fn(hot, vec![i], Some(r));
        s.b.binary(BinOp::Add, acc, acc, r);
        s.fold_int(acc, &set, 2);
    });
    s.fold_int(acc, &set, main_set);
    let id = p.add_function(s.finish_ret(Some(acc)));
    p.set_main(id);
    id
}

/// eqntott: a tiny hot comparison routine invoked enormously often, with a
/// rare maintenance path whose values must not be given callee-save
/// registers (Figure 2's "more registers may worsen the cost").
fn eqntott(scale: Scale) -> Program {
    let mut p = Program::new();
    let hot = hot_fn_with_cold_path(
        &mut p,
        "cmppt",
        11,
        RegClass::Int,
        5,        // common working set
        8,        // common ops
        7,        // hot values crossing the rare calls
        2,        // rare-path calls
        128,      // rare: 1/128 invocations
        (100, 6), // useful inner work
    );
    driver_main(&mut p, 12, trips(scale, 12000), hot, 4);
    p
}

/// ear: the floating-point analogue — a hot FP filter kernel with a rare
/// adaptation path, plus real FP pressure so spill cost dominates at the
/// register-starved end of the sweep.
fn ear(scale: Scale) -> Program {
    let mut p = Program::new();
    let hot = hot_fn_with_cold_path(
        &mut p,
        "fil4",
        21,
        RegClass::Float,
        2, // small enough that the hot path fits the full caller-save bank
        10,
        5,
        2,
        100,
        (20, 5),
    );
    driver_main(&mut p, 22, trips(scale, 8000), hot, 3);
    p
}

/// li: an interpreter — the hot eval routine makes helper calls on its
/// *common* path; several entry-defined, cold-used values cross them.
/// Memory beats both register kinds for those values: only storage-class
/// analysis helps (the paper's second program class).
fn li(scale: Scale) -> Program {
    let mut p = Program::new();
    let lookup = small_leaf(&mut p, "lookup", 31, 4);
    let apply = small_leaf(&mut p, "apply", 32, 5);
    let mut s = Shaper::new("eval", 33);
    let par = s.int_params(1)[0];
    // Entry-defined environment pointers: touched only on the rare path,
    // but live across the common path's helper calls. Memory is cheaper
    // for them than either register kind — only SC gets this right.
    let cold = s.int_set(6);
    // Hot interpreter state crossing only the rare path's gc call: CBH
    // denies it caller-save registers, improved Chaitin does not.
    let hot_cross = s.int_set(3);
    // Common path: two helper calls chained through arguments (each result
    // dies at the next call).
    let r1 = s.b.new_vreg(RegClass::Int);
    s.call_fn(lookup, vec![par, par], Some(r1));
    let r2 = s.b.new_vreg(RegClass::Int);
    s.call_fn(apply, vec![par, r1], Some(r2));
    let acc = s.int_acc();
    s.b.binary(BinOp::Add, acc, acc, r2);
    // Useful interpretation work.
    let work = s.int_set(3);
    s.work_loop_int(acc, &work, 55, 4);
    // Rare: collect garbage and touch the environment.
    s.cond_mod(
        par,
        48,
        |s| {
            s.call_ext("gc", vec![par]);
            s.fold_each_int(acc, &cold);
        },
        |s| {
            let t = s.int_chain(par, 4);
            s.b.binary(BinOp::Add, acc, acc, t);
        },
    );
    s.fold_each_int(acc, &hot_cross);
    let eval = p.add_function(s.finish_ret(Some(acc)));
    driver_main(&mut p, 34, trips(scale, 5000), eval, 3);
    p
}

/// sc: spreadsheet recalculation — like li but with more helper call sites
/// and a wider cold environment.
fn sc(scale: Scale) -> Program {
    let mut p = Program::new();
    let getcell = small_leaf(&mut p, "getcell", 41, 3);
    let update = small_leaf(&mut p, "update", 42, 4);
    let format = small_leaf(&mut p, "format", 43, 3);
    let mut s = Shaper::new("recalc", 44);
    let par = s.int_params(1)[0];
    // A wide spreadsheet environment crossing the helper calls: the
    // storage-class-analysis showcase.
    let cold = s.int_set(8);
    // Hot sheet state crossing only the rare reformat path.
    let hot_cross = s.int_set(3);
    let mut carry = par;
    for f in [getcell, update, getcell, format] {
        let r = s.b.new_vreg(RegClass::Int);
        s.call_fn(f, vec![par, carry], Some(r));
        carry = r;
    }
    let acc = s.int_acc();
    s.b.binary(BinOp::Add, acc, acc, carry);
    let work = s.int_set(3);
    s.work_loop_int(acc, &work, 110, 4);
    s.cond_mod(
        par,
        32,
        |s| {
            s.call_ext("reformat", vec![par]);
            s.fold_each_int(acc, &cold);
        },
        |s| {
            let t = s.int_chain(par, 3);
            s.b.binary(BinOp::Xor, acc, acc, t);
        },
    );
    s.fold_each_int(acc, &hot_cross);
    let recalc = p.add_function(s.finish_ret(Some(acc)));
    driver_main(&mut p, 45, trips(scale, 4000), recalc, 3);
    p
}

/// tomcatv: one big function, deep FP loop nest, no calls at all — the
/// paper's fourth class, where no call-cost technique changes anything.
fn tomcatv(scale: Scale) -> Program {
    let mut p = Program::new();
    let mut s = Shaper::new("main", 51);
    let grid = s.float_set(10);
    let coef = s.float_set(4);
    let facc = s.float_acc();
    let iacc = s.int_acc();
    s.counted_loop(trips(scale, 60), |s, _i| {
        s.counted_loop(trips(scale, 25), |s, j| {
            s.fold_float(facc, &grid, 6);
            s.fold_float(facc, &coef, 2);
            let t = s.float_chain(facc, 3);
            s.b.binary(BinOp::FAdd, facc, facc, t);
            let k = s.int_chain(j, 2);
            s.b.binary(BinOp::Add, iacc, iacc, k);
        });
        s.fold_float(facc, &grid, 4);
    });
    let r = s.float_to_int(facc);
    s.b.binary(BinOp::Add, iacc, iacc, r);
    let id = p.add_function(s.finish_ret(Some(iacc)));
    p.set_main(id);
    p
}

/// fpppp: enormous straight-line floating-point basic blocks — register
/// pressure far beyond the float bank, so spilling dominates and optimistic
/// coloring matters most (Figure 9). Branch probabilities are skewed so
/// static estimates diverge from profiles.
fn fpppp(scale: Scale) -> Program {
    let mut p = Program::new();
    let mut s = Shaper::new("twoel", 61);
    let par = s.int_params(1)[0];
    // Integer bookkeeping that crosses the rare helper call but is hot.
    let book = s.int_set(4);
    let iacc = s.int_acc();
    // Phase 1: a wide clique of simultaneously-live floats.
    let wide = s.float_set(14);
    let facc = s.float_acc();
    s.fold_float(facc, &wide, 40);
    // Skewed branch: statically 50/50, dynamically 1/16.
    s.cond_mod(
        par,
        16,
        |s| {
            s.call_ext("dgemm_helper", vec![par]);
            s.fold_float(facc, &wide, 10);
        },
        |s| {
            s.fold_float(facc, &wide, 8);
        },
    );
    s.fold_float(facc, &wide, 20);
    s.fold_each_int(iacc, &book);
    // Staircased cliques: degree exceeds the bank size while the graph
    // stays colorable — pessimistic (Chaitin) spilling loses to optimistic
    // coloring here, most visibly at small register counts (Figure 9).
    s.staircase_float(facc, 7);
    s.staircase_float(facc, 5);
    // Phase 2: a second clique whose lifetimes start after phase 1 ends.
    let wide2 = s.float_set(10);
    s.fold_float(facc, &wide2, 30);
    let r = s.float_to_int(facc);
    s.b.binary(BinOp::Add, iacc, iacc, r);
    let twoel = p.add_function(s.finish_ret(Some(iacc)));
    driver_main(&mut p, 62, trips(scale, 250), twoel, 2);
    p
}

/// matrix300: a blocked matrix-multiply-like triple nest with bookkeeping
/// that crosses a rare reporting call — the workload where CBH starves for
/// callee-save registers (Figure 11).
fn matrix300(scale: Scale) -> Program {
    let mut p = Program::new();
    let mut s = Shaper::new("sgemm", 71);
    let par = s.int_params(1)[0];
    let tile = s.float_set(8);
    let facc = s.float_acc();
    let book = s.int_set(5); // bookkeeping, live across the rare call
    let iacc = s.int_acc();
    s.counted_loop(trips(scale, 16), |s, j| {
        s.fold_float(facc, &tile, 8);
        let t = s.float_chain(facc, 2);
        s.b.binary(BinOp::FAdd, facc, facc, t);
        s.cond_mod(
            j,
            64,
            |s| {
                s.call_ext("report", vec![par]);
                s.fold_int(iacc, &book, book.len());
            },
            |s| {
                s.fold_int(iacc, &book[..1], 1);
            },
        );
    });
    let r = s.float_to_int(facc);
    s.b.binary(BinOp::Add, iacc, iacc, r);
    let sgemm = p.add_function(s.finish_ret(Some(iacc)));
    driver_main(&mut p, 72, trips(scale, 400), sgemm, 3);
    p
}

/// nasa7: seven-kernels-in-one — FP loop kernels plus a hot call site where
/// more live ranges prefer callee-save registers than exist, so every
/// technique (SC, BS, PR) contributes (the paper's first class).
fn nasa7(scale: Scale) -> Program {
    let mut p = Program::new();
    let fft = small_leaf(&mut p, "cfft2d", 81, 5);
    let mut s = Shaper::new("kernel", 82);
    let par = s.int_params(1)[0];
    let fset = s.float_set(7);
    let facc = s.float_acc();
    // Crossing values with heterogeneous reference densities: competition
    // for callee-save registers that preference decision resolves.
    let hot_cross = s.int_set(3);
    let cold_cross = s.int_set(4);
    let iacc = s.int_acc();
    s.counted_loop(trips(scale, 12), |s, j| {
        s.fold_float(facc, &fset, 6);
        let r = s.b.new_vreg(RegClass::Int);
        s.call_fn(fft, vec![par, j], Some(r));
        s.b.binary(BinOp::Add, iacc, iacc, r);
        s.fold_int(iacc, &hot_cross, 3);
        s.cond_mod(
            j,
            16,
            |s| s.fold_int(iacc, &cold_cross, cold_cross.len()),
            |s| {
                let t = s.int_chain(j, 2);
                s.b.binary(BinOp::Add, iacc, iacc, t);
            },
        );
    });
    let r = s.float_to_int(facc);
    s.b.binary(BinOp::Add, iacc, iacc, r);
    let kernel = p.add_function(s.finish_ret(Some(iacc)));
    driver_main(&mut p, 83, trips(scale, 350), kernel, 3);
    p
}

/// alvinn: neural-net training — two FP-heavy routines called alternately;
/// dense packing matters at small register counts, call cost is modest
/// (priority-based and improved Chaitin tie, Figure 10).
fn alvinn(scale: Scale) -> Program {
    let mut p = Program::new();
    let mut fw = Shaper::new("forward", 91);
    let fpar = fw.int_params(1)[0];
    let w1 = fw.float_set(9);
    let fa = fw.float_acc();
    fw.counted_loop(8, |s, _| {
        s.fold_float(fa, &w1, 7);
    });
    let fr = fw.float_to_int(fa);
    let fw_ret = fw.b.new_vreg(RegClass::Int);
    fw.b.binary(BinOp::Add, fw_ret, fr, fpar);
    let forward = p.add_function(fw.finish_ret(Some(fw_ret)));

    let mut bw = Shaper::new("backward", 92);
    let bpar = bw.int_params(1)[0];
    let w2 = bw.float_set(8);
    let ba = bw.float_acc();
    bw.counted_loop(6, |s, _| {
        s.fold_float(ba, &w2, 6);
    });
    let br = bw.float_to_int(ba);
    let bw_ret = bw.b.new_vreg(RegClass::Int);
    bw.b.binary(BinOp::Add, bw_ret, br, bpar);
    let backward = p.add_function(bw.finish_ret(Some(bw_ret)));

    let mut s = Shaper::new("main", 93);
    let acc = s.int_acc();
    s.counted_loop(trips(scale, 400), |s, i| {
        let r1 = s.b.new_vreg(RegClass::Int);
        s.call_fn(forward, vec![i], Some(r1));
        let r2 = s.b.new_vreg(RegClass::Int);
        s.call_fn(backward, vec![r1], Some(r2));
        s.b.binary(BinOp::Add, acc, acc, r2);
    });
    let id = p.add_function(s.finish_ret(Some(acc)));
    p.set_main(id);
    p
}

/// compress: one hot hashing routine with bit-twiddling chains; output is
/// flushed through a call on a moderately rare path (every 8th call).
fn compress(scale: Scale) -> Program {
    let mut p = Program::new();
    let hot = hot_fn_with_cold_path(
        &mut p,
        "compress_block",
        101,
        RegClass::Int,
        5,
        10,
        6,
        2,
        8,
        (90, 5),
    );
    driver_main(&mut p, 102, trips(scale, 5000), hot, 3);
    p
}

/// espresso: boolean-minimisation loops — two hot int routines with real
/// pressure but few crossing live ranges per call site, so preference
/// decision has nothing to resolve (the paper's third class).
fn espresso(scale: Scale) -> Program {
    let mut p = Program::new();
    let expand = small_leaf(&mut p, "expand", 111, 7);
    let mut s = Shaper::new("minimize", 112);
    let par = s.int_params(1)[0];
    let cubes = s.int_set(8);
    let acc = s.int_acc();
    s.counted_loop(trips(scale, 10), |s, j| {
        s.fold_int(acc, &cubes, 6);
        let t = s.int_chain(j, 4);
        s.b.binary(BinOp::Xor, acc, acc, t);
        s.cond_mod(
            j,
            24,
            |s| {
                let r = s.b.new_vreg(RegClass::Int);
                s.call_fn(expand, vec![par, j], Some(r));
                s.b.binary(BinOp::Add, acc, acc, r);
            },
            |s| {
                let t2 = s.int_chain(j, 2);
                s.b.binary(BinOp::Or, acc, acc, t2);
            },
        );
    });
    let minimize = p.add_function(s.finish_ret(Some(acc)));
    driver_main(&mut p, 113, trips(scale, 700), minimize, 4);
    p
}

/// gcc: many medium functions, call-graph depth three, a bit of everything
/// — int-dominated with mild pressure everywhere.
fn gcc(scale: Scale) -> Program {
    let mut p = Program::new();
    let fold = small_leaf(&mut p, "fold_const", 121, 5);
    let canon = small_leaf(&mut p, "canon_rtx", 122, 6);
    let mut s = Shaper::new("cse_insn", 123);
    let par = s.int_params(1)[0];
    let env = s.int_set(5);
    let acc = s.int_acc();
    let r1 = s.b.new_vreg(RegClass::Int);
    s.call_fn(fold, vec![par, acc], Some(r1));
    s.b.binary(BinOp::Add, acc, acc, r1);
    s.cond_mod(
        par,
        6,
        |s| {
            let r = s.b.new_vreg(RegClass::Int);
            s.call_fn(canon, vec![par, acc], Some(r));
            s.b.binary(BinOp::Xor, acc, acc, r);
        },
        |s| {
            let t = s.int_chain(par, 5);
            s.b.binary(BinOp::Add, acc, acc, t);
        },
    );
    s.fold_int(acc, &env, 4);
    let cse = p.add_function(s.finish_ret(Some(acc)));

    let mut top = Shaper::new("compile_pass", 124);
    let tpar = top.int_params(1)[0];
    let tenv = top.int_set(4);
    let tacc = top.int_acc();
    top.counted_loop(trips(scale, 8), |s, j| {
        let r = s.b.new_vreg(RegClass::Int);
        let arg = s.b.new_vreg(RegClass::Int);
        s.b.binary(BinOp::Add, arg, tpar, j);
        s.call_fn(cse, vec![arg], Some(r));
        s.b.binary(BinOp::Add, tacc, tacc, r);
        s.fold_int(tacc, &tenv, 2);
    });
    let pass = p.add_function(top.finish_ret(Some(tacc)));
    driver_main(&mut p, 125, trips(scale, 350), pass, 3);
    p
}

/// doduc: Monte-Carlo-ish FP simulation — FP loops with moderately frequent
/// calls and mixed-temperature crossing values.
fn doduc(scale: Scale) -> Program {
    let mut p = Program::new();
    let rand_leaf = small_leaf(&mut p, "ranf", 131, 3);
    let mut s = Shaper::new("integrate", 132);
    let par = s.int_params(1)[0];
    let state = s.float_set(6);
    let facc = s.float_acc();
    let cold = s.int_set(4);
    let iacc = s.int_acc();
    s.counted_loop(trips(scale, 14), |s, j| {
        let r = s.b.new_vreg(RegClass::Int);
        s.call_fn(rand_leaf, vec![par, j], Some(r));
        s.b.binary(BinOp::Add, iacc, iacc, r);
        s.fold_float(facc, &state, 5);
        s.cond_mod(
            j,
            20,
            |s| s.fold_int(iacc, &cold, cold.len()),
            |s| {
                let t = s.float_chain(facc, 2);
                s.b.binary(BinOp::FAdd, facc, facc, t);
            },
        );
    });
    // A ring of cold device-state values crossing sampling calls: the
    // structure where optimistic coloring can be *worse* than spilling
    // (Tables 2–3's shaded cells; Figure 8 of the paper).
    s.ring_loop_float_window(facc, 4, 9, 3);
    let r = s.float_to_int(facc);
    s.b.binary(BinOp::Add, iacc, iacc, r);
    let integrate = p.add_function(s.finish_ret(Some(iacc)));
    driver_main(&mut p, 133, trips(scale, 300), integrate, 3);
    p
}

/// spice: circuit simulation — a deep loop nest evaluating device models,
/// with rare error/reporting calls crossed by cold values.
fn spice(scale: Scale) -> Program {
    let mut p = Program::new();
    let model = small_leaf(&mut p, "diode_model", 141, 4);
    let mut s = Shaper::new("step", 142);
    let par = s.int_params(1)[0];
    let mat = s.float_set(8);
    let facc = s.float_acc();
    let cold = s.int_set(5);
    // Hot values crossing only the rare reporting call.
    let hot_cross = s.int_set(2);
    let iacc = s.int_acc();
    s.counted_loop(trips(scale, 10), |s, j| {
        s.counted_loop(40, |s, _| {
            s.fold_float(facc, &mat, 5);
        });
        let r = s.b.new_vreg(RegClass::Int);
        let _ = &model;
        s.b.binary(BinOp::Add, iacc, iacc, j);
        let t = s.int_chain(j, 2);
        s.b.binary(BinOp::Add, iacc, iacc, t);
        let _ = r;
        s.cond_mod(
            j,
            40,
            |s| {
                s.call_ext("report_nonconv", vec![j]);
                s.fold_each_int(iacc, &cold);
            },
            |s| {
                let t = s.int_chain(j, 2);
                s.b.binary(BinOp::Add, iacc, iacc, t);
            },
        );
        s.fold_each_int(iacc, &hot_cross);
    });
    // One device-model evaluation per step.
    let r = s.b.new_vreg(RegClass::Int);
    s.call_fn(model, vec![par, par], Some(r));
    s.b.binary(BinOp::Add, iacc, iacc, r);
    // Convergence-check ring (see doduc): a Figure 8 structure.
    s.ring_loop_float_window(facc, 3, 9, 3);
    let r = s.float_to_int(facc);
    s.b.binary(BinOp::Add, iacc, iacc, r);
    let step = p.add_function(s.finish_ret(Some(iacc)));
    driver_main(&mut p, 143, trips(scale, 250), step, 3);
    p
}

/// Builds the given workload at the given scale.
pub fn build(program: SpecProgram, scale: Scale) -> Program {
    let p = match program {
        SpecProgram::Alvinn => alvinn(scale),
        SpecProgram::Compress => compress(scale),
        SpecProgram::Doduc => doduc(scale),
        SpecProgram::Ear => ear(scale),
        SpecProgram::Eqntott => eqntott(scale),
        SpecProgram::Espresso => espresso(scale),
        SpecProgram::Fpppp => fpppp(scale),
        SpecProgram::Gcc => gcc(scale),
        SpecProgram::Li => li(scale),
        SpecProgram::Matrix300 => matrix300(scale),
        SpecProgram::Nasa7 => nasa7(scale),
        SpecProgram::Sc => sc(scale),
        SpecProgram::Spice => spice(scale),
        SpecProgram::Tomcatv => tomcatv(scale),
    };
    debug_assert!(p.verify().is_ok(), "{program:?} failed verification");
    p
}
