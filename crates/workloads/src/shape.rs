//! Program-shape building blocks for the synthetic SPEC92 workloads.
//!
//! [`Shaper`] wraps a [`FunctionBuilder`] with the structured idioms the
//! workload programs are made of: counted loops, rarely/commonly taken
//! conditionals, long-lived working sets, and short-lived compute chains.
//! Everything is seeded and deterministic.

use ccra_ir::{BinOp, Callee, CmpOp, FuncId, FunctionBuilder, RegClass, VReg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded, structured function builder.
#[derive(Debug)]
pub struct Shaper {
    /// The underlying builder (exposed for custom shapes).
    pub b: FunctionBuilder,
    rng: StdRng,
}

impl Shaper {
    /// Starts a function; the seed makes all filler code deterministic.
    pub fn new(name: &str, seed: u64) -> Self {
        Shaper {
            b: FunctionBuilder::new(name),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Declares `k` integer parameters.
    pub fn int_params(&mut self, k: usize) -> Vec<VReg> {
        let params: Vec<VReg> = (0..k).map(|_| self.b.new_vreg(RegClass::Int)).collect();
        self.b.set_params(params.clone());
        params
    }

    /// Creates `k` integer values initialised with distinct constants — a
    /// long-lived working set.
    pub fn int_set(&mut self, k: usize) -> Vec<VReg> {
        (0..k)
            .map(|_| {
                let v = self.b.new_vreg(RegClass::Int);
                let c = self.rng.gen_range(1..100);
                self.b.iconst(v, c);
                v
            })
            .collect()
    }

    /// Creates `k` float values initialised with distinct constants.
    pub fn float_set(&mut self, k: usize) -> Vec<VReg> {
        (0..k)
            .map(|_| {
                let v = self.b.new_vreg(RegClass::Float);
                let c = self.rng.gen_range(1.0..8.0);
                self.b.fconst(v, c);
                v
            })
            .collect()
    }

    /// Emits `ops` integer operations folding the working set into `acc`,
    /// keeping every member of `set` live through the region.
    pub fn fold_int(&mut self, acc: VReg, set: &[VReg], ops: usize) {
        for _ in 0..ops {
            let v = set[self.rng.gen_range(0..set.len())];
            let op = [BinOp::Add, BinOp::Xor, BinOp::Sub, BinOp::Or][self.rng.gen_range(0..4)];
            self.b.binary(op, acc, acc, v);
        }
    }

    /// Emits `ops` float operations folding the working set into `acc`.
    pub fn fold_float(&mut self, acc: VReg, set: &[VReg], ops: usize) {
        for _ in 0..ops {
            let v = set[self.rng.gen_range(0..set.len())];
            let op = [BinOp::FAdd, BinOp::FMul, BinOp::FSub][self.rng.gen_range(0..3)];
            self.b.binary(op, acc, acc, v);
        }
    }

    /// Folds *every* member of the working set into `acc` exactly once —
    /// guarantees each member is referenced (and therefore live) here.
    pub fn fold_each_int(&mut self, acc: VReg, set: &[VReg]) {
        for &v in set {
            let op = [BinOp::Add, BinOp::Xor][self.rng.gen_range(0..2)];
            self.b.binary(op, acc, acc, v);
        }
    }

    /// Float analogue of [`Shaper::fold_each_int`].
    pub fn fold_each_float(&mut self, acc: VReg, set: &[VReg]) {
        for &v in set {
            let op = [BinOp::FAdd, BinOp::FMul][self.rng.gen_range(0..2)];
            self.b.binary(op, acc, acc, v);
        }
    }

    /// Emits a chain of `len` short-lived integer temporaries seeded from
    /// `seed_val`, returning the final link. Creates register pressure that
    /// dies quickly.
    pub fn int_chain(&mut self, seed_val: VReg, len: usize) -> VReg {
        let mut cur = seed_val;
        for _ in 0..len {
            let t = self.b.new_vreg(RegClass::Int);
            let op = [BinOp::Add, BinOp::Mul, BinOp::Xor][self.rng.gen_range(0..3)];
            self.b.binary(op, t, cur, cur);
            cur = t;
        }
        cur
    }

    /// Emits a chain of `len` short-lived float temporaries.
    pub fn float_chain(&mut self, seed_val: VReg, len: usize) -> VReg {
        let mut cur = seed_val;
        for _ in 0..len {
            let t = self.b.new_vreg(RegClass::Float);
            let op = [BinOp::FAdd, BinOp::FMul][self.rng.gen_range(0..2)];
            self.b.binary(op, t, cur, cur);
            cur = t;
        }
        cur
    }

    /// Emits a two-clique "staircase" of float lifetimes: a first clique of
    /// `n` values, then `n` new values defined one-by-one while the old
    /// ones die one-by-one. Every node's degree reaches `n + 2`-ish while
    /// the graph stays `n + 2`-colorable — the pattern where optimistic
    /// (Briggs) coloring beats Chaitin's pessimistic spilling.
    pub fn staircase_float(&mut self, facc: VReg, n: usize) {
        let a = self.float_set(n);
        // All of `a` live together (the first clique).
        self.fold_each_float(facc, &a);
        let mut b = Vec::with_capacity(n);
        for &ai in &a {
            let bi = self.b.new_vreg(RegClass::Float);
            let c = self.rng.gen_range(1.0..4.0);
            self.b.fconst(bi, c);
            // Last use of ai after bi is defined: edge (ai, bi) and beyond.
            self.b.binary(BinOp::FAdd, facc, facc, ai);
            b.push(bi);
        }
        self.fold_each_float(facc, &b);
    }

    /// Emits a loop whose body recomputes a ring of `n` float values, each
    /// defined from the previous two, with an external call after every
    /// definition. The resulting interference graph is a circulant ring:
    /// every value has degree ~4 yet the graph is 4-colorable, and every
    /// value crosses two calls with only three references — the Figure 8
    /// scenario where optimistic coloring recovers a live range into a
    /// register whose call cost exceeds its spill cost.
    pub fn ring_loop_float(&mut self, facc: VReg, trips: i64, n: usize) {
        self.ring_loop_float_window(facc, trips, n, 2);
    }

    /// Like [`Shaper::ring_loop_float`] with an explicit overlap window:
    /// each value is recomputed from the previous `window` values, giving
    /// every node degree ≈ `2 × window` in the interference graph while the
    /// graph stays `window + 1`-colorable.
    pub fn ring_loop_float_window(&mut self, facc: VReg, trips: i64, n: usize, window: usize) {
        assert!(
            n >= 2 * window && window >= 2,
            "ring too small for its window"
        );
        let v = self.float_set(n);
        self.counted_loop(trips, |s, i| {
            for k in 0..n {
                let mut t = v[(k + n - 1) % n];
                for w in 2..=window {
                    let next = s.b.new_vreg(RegClass::Float);
                    s.b.binary(BinOp::FSub, next, t, v[(k + n - w) % n]);
                    t = next;
                }
                s.b.binary(BinOp::FAdd, v[k], t, v[(k + n - 1) % n]);
                s.call_ext("ring_step", vec![i]);
            }
        });
        self.fold_each_float(facc, &v);
    }

    /// Emits an inner loop of useful work: `trips` iterations folding the
    /// set with `ops` operations each. Keeps the useful-instruction to
    /// overhead-operation ratio realistic without bloating the IR.
    pub fn work_loop_int(&mut self, acc: VReg, set: &[VReg], trips: i64, ops: usize) {
        let set = set.to_vec();
        self.counted_loop(trips, |s, _| {
            s.fold_int(acc, &set, ops);
        });
    }

    /// Float analogue of [`Shaper::work_loop_int`].
    pub fn work_loop_float(&mut self, acc: VReg, set: &[VReg], trips: i64, ops: usize) {
        let set = set.to_vec();
        self.counted_loop(trips, |s, _| {
            s.fold_float(acc, &set, ops);
        });
    }

    /// Emits a counted loop running `trips` times. The body closure
    /// receives the induction variable.
    pub fn counted_loop(&mut self, trips: i64, body: impl FnOnce(&mut Self, VReg)) {
        let i = self.b.new_vreg(RegClass::Int);
        let n = self.b.new_vreg(RegClass::Int);
        let one = self.b.new_vreg(RegClass::Int);
        self.b.iconst(i, 0);
        self.b.iconst(n, trips);
        self.b.iconst(one, 1);
        let head = self.b.reserve_block();
        let body_bb = self.b.reserve_block();
        let exit = self.b.reserve_block();
        self.b.jump(head);
        self.b.switch_to(head);
        let c = self.b.new_vreg(RegClass::Int);
        self.b.cmp(CmpOp::Lt, c, i, n);
        self.b.branch(c, body_bb, exit);
        self.b.switch_to(body_bb);
        body(self, i);
        self.b.binary(BinOp::Add, i, i, one);
        self.b.jump(head);
        self.b.switch_to(exit);
    }

    /// Emits `if (selector % modulus == 0) { rare } else { common }`.
    /// With a loop induction variable as selector, the rare arm runs once
    /// every `modulus` iterations.
    pub fn cond_mod(
        &mut self,
        selector: VReg,
        modulus: i64,
        rare: impl FnOnce(&mut Self),
        common: impl FnOnce(&mut Self),
    ) {
        let m = self.b.new_vreg(RegClass::Int);
        let z = self.b.new_vreg(RegClass::Int);
        let c = self.b.new_vreg(RegClass::Int);
        self.b.iconst(m, modulus);
        self.b.binary(BinOp::Rem, z, selector, m);
        let zero = self.b.new_vreg(RegClass::Int);
        self.b.iconst(zero, 0);
        self.b.cmp(CmpOp::Eq, c, z, zero);
        let rare_bb = self.b.reserve_block();
        let common_bb = self.b.reserve_block();
        let join = self.b.reserve_block();
        self.b.branch(c, rare_bb, common_bb);
        self.b.switch_to(rare_bb);
        rare(self);
        self.b.jump(join);
        self.b.switch_to(common_bb);
        common(self);
        self.b.jump(join);
        self.b.switch_to(join);
    }

    /// Calls an external routine (deterministic pseudo-function).
    pub fn call_ext(&mut self, name: &'static str, args: Vec<VReg>) -> VReg {
        let r = self.b.new_vreg(RegClass::Int);
        self.b.call(Callee::External(name), args, Some(r));
        r
    }

    /// Calls an internal function.
    pub fn call_fn(&mut self, f: FuncId, args: Vec<VReg>, ret: Option<VReg>) {
        self.b.call(Callee::Internal(f), args, ret);
    }

    /// A fresh zero-initialised integer accumulator.
    pub fn int_acc(&mut self) -> VReg {
        let v = self.b.new_vreg(RegClass::Int);
        self.b.iconst(v, 0);
        v
    }

    /// A fresh zero-initialised float accumulator.
    pub fn float_acc(&mut self) -> VReg {
        let v = self.b.new_vreg(RegClass::Float);
        self.b.fconst(v, 0.0);
        v
    }

    /// Folds a float accumulator into an int result (so float work is
    /// observable through an int return).
    pub fn float_to_int(&mut self, facc: VReg) -> VReg {
        let r = self.b.new_vreg(RegClass::Int);
        self.b.unary(ccra_ir::UnOp::FloatToInt, r, facc);
        r
    }

    /// Finishes the function with a return.
    pub fn finish_ret(mut self, value: Option<VReg>) -> ccra_ir::Function {
        self.b.ret(value);
        self.b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_analysis::{run, InterpConfig, Value};
    use ccra_ir::Program;

    fn exec(f: ccra_ir::Function) -> ccra_analysis::RunStats {
        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        p.verify().unwrap();
        run(&p, &InterpConfig::default()).unwrap()
    }

    #[test]
    fn counted_loop_runs_exactly() {
        let mut s = Shaper::new("main", 1);
        let acc = s.int_acc();
        let one = s.int_set(1);
        s.counted_loop(17, |s, _i| {
            s.fold_int(acc, &one, 1);
        });
        let stats = exec(s.finish_ret(Some(acc)));
        assert!(matches!(stats.result, Some(Value::Int(_))));
        // Body executed 17 times: the accumulator folded 17 ops.
        assert!(stats.steps > 17);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut s = Shaper::new("main", 2);
        let acc = s.int_acc();
        let set = s.int_set(2);
        s.counted_loop(5, |s, _| {
            s.counted_loop(7, |s, _| {
                s.fold_int(acc, &set, 1);
            });
        });
        let stats = exec(s.finish_ret(Some(acc)));
        assert!(stats.steps >= 35);
    }

    #[test]
    fn cond_mod_rare_path_frequency() {
        let mut s = Shaper::new("main", 3);
        let rare_count = s.int_acc();
        let common_count = s.int_acc();
        let one = s.b.new_vreg(RegClass::Int);
        s.b.iconst(one, 1);
        s.counted_loop(30, |s, i| {
            s.cond_mod(
                i,
                10,
                |s| {
                    s.b.binary(BinOp::Add, rare_count, rare_count, one);
                },
                |s| {
                    s.b.binary(BinOp::Add, common_count, common_count, one);
                },
            );
        });
        // Return rare*1000 + common to observe both counts.
        let thousand = s.b.new_vreg(RegClass::Int);
        s.b.iconst(thousand, 1000);
        let scaled = s.b.new_vreg(RegClass::Int);
        s.b.binary(BinOp::Mul, scaled, rare_count, thousand);
        let total = s.b.new_vreg(RegClass::Int);
        s.b.binary(BinOp::Add, total, scaled, common_count);
        let stats = exec(s.finish_ret(Some(total)));
        // Rare arm runs for i = 0, 10, 20; common for the other 27.
        assert_eq!(stats.result, Some(Value::Int(3 * 1000 + 27)));
    }

    #[test]
    fn chains_and_folds_are_deterministic() {
        let build = || {
            let mut s = Shaper::new("main", 42);
            let set = s.int_set(4);
            let acc = s.int_acc();
            s.fold_int(acc, &set, 10);
            let t = s.int_chain(acc, 5);
            s.finish_ret(Some(t))
        };
        assert_eq!(exec(build()).result, exec(build()).result);
    }

    #[test]
    fn float_work_observable() {
        let mut s = Shaper::new("main", 7);
        let fs = s.float_set(3);
        let facc = s.float_acc();
        s.fold_float(facc, &fs, 6);
        let t = s.float_chain(facc, 2);
        let r = s.float_to_int(t);
        let stats = exec(s.finish_ret(Some(r)));
        assert!(matches!(stats.result, Some(Value::Int(_))));
    }
}
