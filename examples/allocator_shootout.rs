//! Shootout: run all five allocator families over the fourteen SPEC92-like
//! workloads and print a league table of total overhead operations.
//!
//! ```text
//! cargo run --release --example allocator_shootout [-- --scale 0.25]
//! ```

use call_cost_regalloc::prelude::*;
use ccra_analysis::FreqMode;
use ccra_eval::{Bench, Table};
use ccra_regalloc::PriorityOrdering;
use ccra_workloads::Scale;

fn main() {
    let scale = parse_scale().unwrap_or(Scale(0.25));
    let file = RegisterFile::new(9, 7, 3, 3);
    let configs = [
        ("base", AllocatorConfig::base()),
        ("improved", AllocatorConfig::improved()),
        ("optimistic", AllocatorConfig::optimistic()),
        (
            "priority",
            AllocatorConfig::priority(PriorityOrdering::Sorting),
        ),
        ("CBH", AllocatorConfig::cbh()),
    ];

    let mut headers = vec!["program".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.to_string()));
    headers.push("best".to_string());
    let mut table = Table::new(
        format!(
            "Total overhead operations at {file} (dynamic frequencies, scale {})",
            scale.0
        ),
        headers,
    );

    let mut wins = vec![0usize; configs.len()];
    for prog in SpecProgram::ALL {
        let bench = Bench::load(prog, scale);
        let totals: Vec<f64> = configs
            .iter()
            .map(|(_, c)| bench.overhead(FreqMode::Dynamic, file, c).total())
            .collect();
        let best = totals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        wins[best] += 1;
        let mut row = vec![prog.to_string()];
        row.extend(totals.iter().map(|t| format!("{t:.0}")));
        row.push(configs[best].0.to_string());
        table.push_row(row);
    }
    println!("{table}");
    for ((name, _), w) in configs.iter().zip(&wins) {
        println!("{name:>12}: best on {w} programs");
    }
}

fn parse_scale() -> Option<Scale> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--scale")?;
    args.get(i + 1)?.parse::<f64>().ok().map(Scale)
}
