//! Calling-convention tuning: for a call-heavy interpreter workload, how
//! should a machine's registers be split between caller-save and
//! callee-save? This is the design question behind the paper's register
//! sweeps, turned around: fix the total register count, vary the split.
//!
//! ```text
//! cargo run --release --example call_heavy_tuning
//! ```

use call_cost_regalloc::prelude::*;
use ccra_analysis::FreqMode;
use ccra_eval::{Bench, Table};
use ccra_workloads::Scale;

fn main() {
    let bench = Bench::load(SpecProgram::Li, Scale(0.25));
    // 16 integer + 10 float registers total; sweep the callee-save share.
    let mut table = Table::new(
        "li (interpreter): fixed 16-int/10-float machine, varying callee-save share",
        vec![
            "split".into(),
            "base".into(),
            "improved".into(),
            "improved wins by".into(),
        ],
    );
    for callee_int in 0..=9u8 {
        let callee_float = (callee_int * 10 / 16).min(6);
        let file = RegisterFile::new(16 - callee_int, 10 - callee_float, callee_int, callee_float);
        let base = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
            .total();
        let improved = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::improved())
            .total();
        table.push_row(vec![
            file.to_string(),
            format!("{base:.0}"),
            format!("{improved:.0}"),
            format!("{:.2}x", base / improved.max(1e-9)),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: the base allocator is hostage to the split — it parks\n\
         call-crossing values in whatever callee-save registers exist. The\n\
         improved allocator's storage-class analysis spills what isn't worth\n\
         a register, flattening the curve: calling-convention design matters\n\
         much less once the allocator is call-cost aware (Section 12)."
    );
}
