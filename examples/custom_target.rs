//! Bring your own target and cost model: allocate for a hypothetical
//! embedded core with few registers and expensive memory, and compare
//! against the default MIPS-like model.
//!
//! ```text
//! cargo run --release --example custom_target
//! ```

use call_cost_regalloc::prelude::*;
use ccra_machine::CostModel;
use ccra_regalloc::allocate_program_with;
use ccra_workloads::{spec_program_scaled, Scale};

fn main() {
    let program = spec_program_scaled(SpecProgram::Compress, Scale(0.25));
    let freq = FrequencyInfo::profile(&program).expect("workload runs");

    // A small embedded core: 8 integer registers (6 caller + 2 callee),
    // 4 caller-save float registers.
    let tiny = RegisterFile::new(6, 4, 2, 0);

    // Memory is 4× as expensive as on the MIPS model (slow SRAM): every
    // spill touch costs 4 overhead units, and save/restore pairs cost 8.
    let slow_memory = CostModel {
        spill_ref_ops: 4.0,
        caller_save_pair_ops: 8.0,
        callee_save_pair_ops: 8.0,
        shuffle_move_ops: 1.0,
    };

    println!("compress on a tiny embedded core {tiny}:\n");
    for (label, cost) in [
        ("MIPS-like cost model", CostModel::paper()),
        ("slow-memory cost model", slow_memory),
    ] {
        for config in [AllocatorConfig::base(), AllocatorConfig::improved()] {
            let out = allocate_program_with(&program, &freq, tiny, &config, &cost)
                .expect("allocation succeeds");
            println!("  {label:<24} {:<9} -> {}", config.label(), out.overhead);
        }
        println!();
    }

    println!(
        "Reading: with expensive memory the improved allocator's storage-class\n\
         analysis spills less aggressively — the spill/call-cost trade-off is\n\
         re-balanced by the cost model, not hard-coded in the algorithm."
    );
}
