//! Quickstart: build a tiny function, allocate registers with the paper's
//! improved Chaitin-style allocator, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use call_cost_regalloc::prelude::*;
use ccra_ir::{display_function, BinOp, Callee, CmpOp};

fn main() {
    // A function with the paper's central tension: `bias` lives across a
    // call inside a loop — should it get a caller-save register (pay
    // save/restore at every call), a callee-save register (pay entry/exit
    // save/restore), or live in memory?
    let mut b = FunctionBuilder::new("main");
    let bias = b.new_vreg(RegClass::Int);
    let i = b.new_vreg(RegClass::Int);
    let n = b.new_vreg(RegClass::Int);
    let one = b.new_vreg(RegClass::Int);
    let acc = b.new_vreg(RegClass::Int);
    b.iconst(bias, 17);
    b.iconst(i, 0);
    b.iconst(n, 100);
    b.iconst(one, 1);
    b.iconst(acc, 0);

    let head = b.reserve_block();
    let body = b.reserve_block();
    let exit = b.reserve_block();
    b.jump(head);
    b.switch_to(head);
    let c = b.new_vreg(RegClass::Int);
    b.cmp(CmpOp::Lt, c, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let r = b.new_vreg(RegClass::Int);
    b.call(Callee::External("work"), vec![i], Some(r));
    b.binary(BinOp::Add, acc, acc, r);
    b.binary(BinOp::Add, i, i, one);
    b.jump(head);
    b.switch_to(exit);
    b.binary(BinOp::Add, acc, acc, bias);
    b.ret(Some(acc));

    let mut program = Program::new();
    let id = program.add_function(b.finish());
    program.set_main(id);
    program.verify().expect("well-formed IR");

    println!("== input ==\n{}", display_function(program.function(id)));

    // Profile it (the \"dynamic information\" of the paper), then allocate.
    let profile = FrequencyInfo::profile(&program).expect("program terminates");
    let file = RegisterFile::new(8, 6, 2, 2);

    for config in [AllocatorConfig::base(), AllocatorConfig::improved()] {
        let out = ccra_regalloc::allocate_program(&program, &profile, file, &config)
            .expect("allocation succeeds");
        println!(
            "== {} allocator on {file} ==\n  overhead: {}\n  rounds: {}, ranges spilled: {}, callee-save registers used: {}",
            config.label(),
            out.overhead,
            out.func(id).rounds,
            out.func(id).spilled_ranges,
            out.func(id).callee_regs_used,
        );
    }

    // The rewritten program still runs — and measures its own overhead.
    let out =
        ccra_regalloc::allocate_program(&program, &profile, file, &AllocatorConfig::improved())
            .expect("allocation succeeds");
    let stats = ccra_analysis::run(&out.program, &ccra_analysis::InterpConfig::default())
        .expect("allocated program runs");
    println!(
        "== measured by execution ==\n  result: {:?}\n  useful instructions: {}\n  overhead ops (spill/caller/callee/shuffle): {:?}",
        stats.result, stats.steps, stats.overhead_ops
    );
}
