//! Call-cost directed register allocation — a full reproduction of
//! Lueh & Gross, *Call-Cost Directed Register Allocation*, PLDI 1997.
//!
//! This façade crate re-exports the public API of the workspace:
//!
//! * [`ir`] — the RISC-style IR substrate ([`ccra_ir`]);
//! * [`analysis`] — CFG analyses, liveness, frequency estimation, and the
//!   profiling interpreter ([`ccra_analysis`]);
//! * [`machine`] — the two-bank register file with caller-/callee-save
//!   splits ([`ccra_machine`]);
//! * [`regalloc`] — the paper's contribution: the enhanced Chaitin-style
//!   allocator plus optimistic, priority-based, and CBH comparators
//!   ([`ccra_regalloc`]);
//! * [`workloads`] — synthetic SPEC92-like benchmark programs
//!   ([`ccra_workloads`]);
//! * [`eval`] — experiment drivers for every table and figure
//!   ([`ccra_eval`]).
//!
//! # Quickstart
//!
//! ```
//! use call_cost_regalloc::prelude::*;
//!
//! // Build a workload, profile it, and allocate with the improved
//! // Chaitin-style allocator of the paper.
//! let program = ccra_workloads::spec_program(SpecProgram::Eqntott);
//! let profile = FrequencyInfo::profile(&program).expect("program runs");
//! let file = RegisterFile::mips_full();
//! let outcome = allocate_program(&program, &profile, file, &AllocatorConfig::improved())
//!     .expect("allocation succeeds");
//! assert!(outcome.overhead.total() >= 0.0);
//! ```

#![forbid(unsafe_code)]

pub use ccra_analysis as analysis;
pub use ccra_eval as eval;
pub use ccra_ir as ir;
pub use ccra_machine as machine;
pub use ccra_regalloc as regalloc;
pub use ccra_workloads as workloads;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use ccra_analysis::FrequencyInfo;
    pub use ccra_ir::{Function, FunctionBuilder, Program, RegClass};
    pub use ccra_machine::{RegisterFile, SaveKind};
    pub use ccra_regalloc::{allocate_program, AllocatorConfig, AllocatorKind, Overhead};
    pub use ccra_workloads::SpecProgram;
}
