//! Model-based tests for the analyses: the production dataflow
//! implementations are checked against independent, obviously-correct
//! (and much slower) reference implementations on random programs.

use ccra_analysis::{DomTree, Liveness};
use ccra_ir::{BlockId, Function, VReg};
use ccra_workloads::{random_program, FuzzConfig};
use proptest::prelude::*;

/// Reference liveness: `v` is live-in at `b` iff some CFG path from the
/// start of `b` reaches a use of `v` with no intervening def, computed by a
/// naive per-vreg fixpoint over "upward-exposed use" / "kills" summaries.
fn naive_live_in(f: &Function, v: VReg) -> Vec<bool> {
    let n = f.num_blocks();
    // Per block: does it use v before any def? does it def v at all?
    let mut exposed = vec![false; n];
    let mut kills = vec![false; n];
    for (bb, block) in f.blocks() {
        let mut defined = false;
        for inst in &block.insts {
            if !defined && inst.uses().contains(&v) {
                exposed[bb.index()] = true;
            }
            if inst.def() == Some(v) {
                defined = true;
            }
        }
        if !defined && block.term.use_reg() == Some(v) {
            exposed[bb.index()] = true;
        }
        kills[bb.index()] = defined;
    }
    // live_in(b) = exposed(b) ∨ (¬kills(b) ∧ ∃ succ s: live_in(s))
    let mut live = exposed.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for (bb, _) in f.blocks() {
            if live[bb.index()] || kills[bb.index()] {
                continue;
            }
            if f.successors(bb).any(|s| live[s.index()]) {
                live[bb.index()] = true;
                changed = true;
            }
        }
    }
    live
}

/// Reference dominance: `a` dominates `b` iff removing `a` disconnects `b`
/// from the entry (checked by DFS that avoids `a`).
fn naive_dominates(f: &Function, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    // Can we reach b from entry without passing through a?
    let mut visited = vec![false; f.num_blocks()];
    let mut stack = vec![f.entry()];
    if f.entry() == a {
        return true; // entry dominates everything reachable
    }
    while let Some(x) = stack.pop() {
        if x == b {
            return false; // reached b while avoiding a
        }
        if visited[x.index()] || x == a {
            continue;
        }
        visited[x.index()] = true;
        for s in f.successors(x) {
            if s != a {
                stack.push(s);
            }
        }
    }
    // b unreachable while avoiding a: a dominates b if b is reachable at all.
    reachable(f, b)
}

fn reachable(f: &Function, b: BlockId) -> bool {
    let mut visited = vec![false; f.num_blocks()];
    let mut stack = vec![f.entry()];
    while let Some(x) = stack.pop() {
        if x == b {
            return true;
        }
        if visited[x.index()] {
            continue;
        }
        visited[x.index()] = true;
        stack.extend(f.successors(x));
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// The bitset dataflow liveness agrees with the naive per-vreg fixpoint
    /// on every (block, vreg) pair.
    #[test]
    fn liveness_matches_reference(seed in 0u64..100_000) {
        let p = random_program(seed, &FuzzConfig { functions: 1, ..Default::default() });
        let f = p.function(p.main().unwrap());
        let live = Liveness::compute(f);
        for v in f.vreg_ids() {
            let reference = naive_live_in(f, v);
            for bb in f.block_ids() {
                // The reference marks unreachable blocks too; restrict the
                // comparison to reachable ones (dead blocks never execute).
                if !reachable(f, bb) {
                    continue;
                }
                prop_assert_eq!(
                    live.is_live_in(bb, v),
                    reference[bb.index()],
                    "seed {}: live_in({}, {}) disagrees", seed, bb, v
                );
            }
        }
    }

    /// The CHK dominator tree agrees with path-based dominance.
    #[test]
    fn dominators_match_reference(seed in 0u64..100_000) {
        let p = random_program(seed, &FuzzConfig { functions: 1, stmts_per_fn: 15, ..Default::default() });
        let f = p.function(p.main().unwrap());
        let dom = DomTree::compute(f);
        for a in f.block_ids() {
            for b in f.block_ids() {
                if !reachable(f, a) || !reachable(f, b) {
                    continue;
                }
                prop_assert_eq!(
                    dom.dominates(a, b),
                    naive_dominates(f, a, b),
                    "seed {}: dominates({}, {}) disagrees", seed, a, b
                );
            }
        }
    }

    /// Webs partition references: every def/use site of the function
    /// belongs to exactly one web, and webs of the same vreg never share a
    /// reference site.
    #[test]
    fn webs_partition_references(seed in 0u64..100_000) {
        use std::collections::HashSet;
        let p = random_program(seed, &FuzzConfig { functions: 1, ..Default::default() });
        let f = p.function(p.main().unwrap());
        let webs = ccra_analysis::Webs::compute(f);
        let mut seen_defs: HashSet<(u32, u32, u32)> = HashSet::new();
        let mut seen_uses: HashSet<(u32, u32, u32)> = HashSet::new();
        for (_, data) in webs.iter() {
            for &(bb, i) in &data.defs {
                prop_assert!(
                    seen_defs.insert((bb.0, i, data.vreg.0)),
                    "def site claimed by two webs"
                );
            }
            for &(bb, i) in &data.uses {
                prop_assert!(
                    seen_uses.insert((bb.0, i, data.vreg.0)),
                    "use site claimed by two webs"
                );
            }
        }
        // Every def in the code is claimed by some web.
        for (bb, block) in f.blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Some(d) = inst.def() {
                    prop_assert!(
                        webs.def_web(bb, i as u32, d).is_some(),
                        "unclaimed def at {}:{}", bb, i
                    );
                }
            }
        }
    }
}
