//! Cross-crate invariants: measured vs analytic overhead, coloring
//! validity, and cost-model consistency.

use call_cost_regalloc::prelude::*;
use ccra_analysis::{run, InterpConfig};
use ccra_machine::SaveKind;
use ccra_regalloc::{measured_overhead, Loc};
use ccra_workloads::{spec_program_scaled, Scale};

const SCALE: Scale = Scale(0.05);

/// The analytic (frequency-weighted) overhead must equal the overhead the
/// interpreter measures when the frequencies come from profiling the same
/// input — spill/marker insertion never changes control flow.
#[test]
fn measured_overhead_equals_analytic_overhead() {
    for prog in SpecProgram::ALL {
        let ir = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&ir).unwrap();
        for config in [
            AllocatorConfig::base(),
            AllocatorConfig::improved(),
            AllocatorConfig::optimistic(),
            AllocatorConfig::cbh(),
        ] {
            let file = ccra_machine::RegisterFile::new(8, 6, 2, 2);
            let out = ccra_regalloc::allocate_program(&ir, &freq, file, &config)
                .expect("allocation succeeds");
            let stats = run(&out.program, &InterpConfig::default()).unwrap();
            let measured = measured_overhead(&stats);
            let analytic = out.overhead;
            for (name, m, a) in [
                ("spill", measured.spill, analytic.spill),
                ("caller", measured.caller_save, analytic.caller_save),
                ("callee", measured.callee_save, analytic.callee_save),
                ("shuffle", measured.shuffle, analytic.shuffle),
            ] {
                assert!(
                    (m - a).abs() < 1e-6,
                    "{prog}/{}: {name} measured {m} != analytic {a}",
                    config.label()
                );
            }
        }
    }
}

/// No two interfering live ranges may share a register, for any allocator.
#[test]
fn final_colorings_are_conflict_free() {
    for prog in [SpecProgram::Eqntott, SpecProgram::Fpppp, SpecProgram::Sc] {
        let ir = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&ir).unwrap();
        for config in [AllocatorConfig::base(), AllocatorConfig::improved()] {
            let file = ccra_machine::RegisterFile::new(6, 4, 1, 1);
            for (id, f) in ir.functions() {
                // Re-run a single-function allocation so we can inspect the
                // final context's interference relation.
                let (_body, alloc) = ccra_regalloc::allocate_function(
                    f,
                    freq.func(id),
                    &file,
                    &config,
                    &ccra_machine::CostModel::paper(),
                )
                .expect("allocation succeeds");
                // Recompute the context of the *final* body and check the
                // summaries are structurally sane.
                assert_eq!(
                    alloc
                        .ranges
                        .iter()
                        .filter(|r| r.loc == Loc::Spilled)
                        .count()
                        + alloc
                            .ranges
                            .iter()
                            .filter(|r| r.loc != Loc::Spilled)
                            .count(),
                    alloc.ranges.len()
                );
                for r in &alloc.ranges {
                    if let Loc::Reg(reg) = r.loc {
                        assert_eq!(reg.class, r.class, "{prog}: cross-bank assignment");
                    }
                }
            }
        }
    }
}

/// Overhead components must respect the machine's structure: no caller-save
/// cost without calls, callee-save cost bounded by bank size × invocations.
#[test]
fn overhead_component_sanity() {
    let ir = spec_program_scaled(SpecProgram::Tomcatv, SCALE);
    let freq = FrequencyInfo::profile(&ir).unwrap();
    let file = ccra_machine::RegisterFile::new(8, 6, 2, 2);
    let out = ccra_regalloc::allocate_program(&ir, &freq, file, &AllocatorConfig::base())
        .expect("allocation succeeds");
    assert_eq!(out.overhead.caller_save, 0.0, "tomcatv has no calls");
    let max_callee = 2.0
        * (file.count(ccra_ir::RegClass::Int, SaveKind::CalleeSave)
            + file.count(ccra_ir::RegClass::Float, SaveKind::CalleeSave)) as f64;
    assert!(out.overhead.callee_save <= max_callee);
}

/// Spilling everything is always a legal (if bad) strategy; the allocators
/// must never exceed the all-spill overhead at the ABI minimum.
#[test]
fn allocators_beat_spilling_everything() {
    for prog in [SpecProgram::Li, SpecProgram::Compress] {
        let ir = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&ir).unwrap();
        // All-spill cost ≈ total weighted refs: approximate with the sum of
        // block frequencies × 3 refs per instruction (upper bound).
        let mut ref_bound = 0.0;
        for (id, f) in ir.functions() {
            for (bb, block) in f.blocks() {
                ref_bound += freq.func(id).block(bb) * (3 * block.insts.len() + 1) as f64;
            }
        }
        let out = ccra_regalloc::allocate_program(
            &ir,
            &freq,
            ccra_machine::RegisterFile::minimum(),
            &AllocatorConfig::base(),
        )
        .expect("allocation succeeds");
        assert!(
            out.overhead.total() < ref_bound,
            "{prog}: overhead {} exceeds the all-spill bound {ref_bound}",
            out.overhead.total()
        );
    }
}

/// The improved allocator never loses to base by more than the shared-
/// callee sharing artifact on our workloads (and wins on the headline ones).
#[test]
fn improved_wins_where_the_paper_says_it_does() {
    let file = ccra_machine::RegisterFile::mips_full();
    for (prog, min_ratio) in [
        (SpecProgram::Eqntott, 5.0),
        (SpecProgram::Ear, 5.0),
        (SpecProgram::Li, 1.2),
        (SpecProgram::Sc, 1.2),
    ] {
        let ir = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&ir).unwrap();
        let base = ccra_regalloc::allocate_program(&ir, &freq, file, &AllocatorConfig::base())
            .expect("allocation succeeds");
        let improved =
            ccra_regalloc::allocate_program(&ir, &freq, file, &AllocatorConfig::improved())
                .expect("allocation succeeds");
        let ratio = base.overhead.total() / improved.overhead.total().max(1e-9);
        assert!(
            ratio >= min_ratio,
            "{prog}: base/improved = {ratio:.2}, expected ≥ {min_ratio}"
        );
    }
    // tomcatv: nothing to improve (class 4).
    let ir = spec_program_scaled(SpecProgram::Tomcatv, SCALE);
    let freq = FrequencyInfo::profile(&ir).unwrap();
    let base = ccra_regalloc::allocate_program(&ir, &freq, file, &AllocatorConfig::base())
        .expect("allocation succeeds");
    let improved = ccra_regalloc::allocate_program(&ir, &freq, file, &AllocatorConfig::improved())
        .expect("allocation succeeds");
    let ratio = base.overhead.total().max(1.0) / improved.overhead.total().max(1.0);
    assert!((0.99..=1.01).contains(&ratio), "tomcatv ratio {ratio}");
}
