//! Qualitative paper claims, checked at reduced scale. These mirror the
//! conclusions of Sections 3–11; `EXPERIMENTS.md` records the full-scale
//! numbers.

use call_cost_regalloc::prelude::*;
use ccra_analysis::FreqMode;
use ccra_eval::Bench;
use ccra_regalloc::PriorityOrdering;
use ccra_workloads::Scale;

const SCALE: Scale = Scale(0.1);

/// Section 3.2 / Figure 2: spill cost collapses as registers grow, and call
/// cost comes to dominate the base allocator's overhead.
#[test]
fn fig2_call_cost_dominates_with_many_registers() {
    let bench = Bench::load(SpecProgram::Eqntott, SCALE);
    let small = bench.overhead(
        FreqMode::Dynamic,
        RegisterFile::minimum(),
        &AllocatorConfig::base(),
    );
    let large = bench.overhead(
        FreqMode::Dynamic,
        RegisterFile::mips_full(),
        &AllocatorConfig::base(),
    );
    assert!(small.spill > 0.0, "register-starved eqntott must spill");
    assert_eq!(large.spill, 0.0, "the full machine eliminates spilling");
    assert!(
        large.call_cost() > 0.8 * large.total(),
        "call cost dominates: {large}"
    );
}

/// Figure 2's sting: *more* registers can make the base allocator worse.
#[test]
fn fig2_more_registers_can_hurt_the_base_allocator() {
    let bench = Bench::load(SpecProgram::Eqntott, SCALE);
    let sweep = RegisterFile::paper_sweep();
    let totals: Vec<f64> = sweep
        .iter()
        .map(|&f| {
            bench
                .overhead(FreqMode::Dynamic, f, &AllocatorConfig::base())
                .total()
        })
        .collect();
    let increases = totals.windows(2).filter(|w| w[1] > w[0] * 1.001).count();
    assert!(
        increases > 0,
        "expected at least one cost increase along the sweep: {totals:?}"
    );
}

/// Figure 7: improved Chaitin reduces eqntott/ear overhead by a large
/// factor at generous register counts (the paper reports 45–66× at full
/// scale; the reduced-scale workloads here, generated from the vendored
/// rng stream, show 7–38×).
#[test]
fn fig7_large_factors_at_full_machine() {
    for (prog, expect) in [(SpecProgram::Eqntott, 5.0), (SpecProgram::Ear, 20.0)] {
        let bench = Bench::load(prog, SCALE);
        let file = RegisterFile::mips_full();
        let base = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
            .total();
        let improved = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::improved())
            .total();
        let ratio = base / improved.max(1e-9);
        assert!(ratio > expect, "{prog}: base/improved = {ratio:.1}");
    }
}

/// Tables 2–3: optimistic coloring barely moves the needle once call cost
/// is counted — within a modest band of the base allocator.
#[test]
fn tab23_optimistic_changes_little() {
    for prog in [SpecProgram::Li, SpecProgram::Eqntott, SpecProgram::Tomcatv] {
        let bench = Bench::load(prog, SCALE);
        for file in [RegisterFile::new(8, 6, 2, 2), RegisterFile::mips_full()] {
            let base = bench
                .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
                .total();
            let opt = bench
                .overhead(FreqMode::Dynamic, file, &AllocatorConfig::optimistic())
                .total();
            if base > 0.0 {
                let ratio = base / opt.max(1e-9);
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "{prog} at {file}: base/opt = {ratio:.2}"
                );
            }
        }
    }
}

/// Section 7, class 4: no technique changes tomcatv.
#[test]
fn class4_tomcatv_is_flat() {
    let bench = Bench::load(SpecProgram::Tomcatv, SCALE);
    for file in RegisterFile::short_sweep() {
        let base = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
            .total();
        for (sc, bs, pr) in [
            (true, false, false),
            (false, true, false),
            (true, true, true),
        ] {
            let x = bench
                .overhead(
                    FreqMode::Dynamic,
                    file,
                    &AllocatorConfig::with_improvements(sc, bs, pr),
                )
                .total();
            let ratio = if x == 0.0 && base == 0.0 {
                1.0
            } else {
                base / x.max(1e-9)
            };
            assert!(
                (0.95..=1.05).contains(&ratio),
                "tomcatv should be flat; got {ratio} at {file}"
            );
        }
    }
}

/// Section 7, class 2: storage-class analysis alone captures (nearly) all
/// of li's and sc's improvement.
#[test]
fn class2_sc_dominates_for_li_and_sc() {
    for prog in [SpecProgram::Li, SpecProgram::Sc] {
        let bench = Bench::load(prog, SCALE);
        let file = RegisterFile::new(9, 7, 3, 3);
        let base = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
            .total();
        let sc_only = bench
            .overhead(
                FreqMode::Dynamic,
                file,
                &AllocatorConfig::with_improvements(true, false, false),
            )
            .total();
        let full = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::improved())
            .total();
        let sc_ratio = base / sc_only.max(1e-9);
        let full_ratio = base / full.max(1e-9);
        assert!(
            sc_ratio > 1.1,
            "{prog}: SC alone should help ({sc_ratio:.2})"
        );
        assert!(
            sc_ratio > 0.6 * full_ratio,
            "{prog}: SC captures most of the gain (SC {sc_ratio:.2} vs full {full_ratio:.2})"
        );
    }
}

/// Section 10 / Figure 11: CBH over-constrains when callee-save registers
/// are scarce — improved Chaitin stays ahead.
#[test]
fn fig11_cbh_loses_when_callee_saves_are_scarce() {
    for prog in [SpecProgram::Ear, SpecProgram::Li] {
        let bench = Bench::load(prog, SCALE);
        let file = RegisterFile::new(8, 6, 2, 2);
        let improved = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::improved())
            .total();
        let cbh = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::cbh())
            .total();
        assert!(
            improved <= cbh,
            "{prog}: improved {improved} should not exceed CBH {cbh}"
        );
    }
}

/// Section 9: improved Chaitin-style coloring is at least as good as
/// priority-based coloring on the programs the paper calls wins.
#[test]
fn fig10_improved_at_least_matches_priority() {
    for prog in [
        SpecProgram::Ear,
        SpecProgram::Sc,
        SpecProgram::Nasa7,
        SpecProgram::Tomcatv,
    ] {
        let bench = Bench::load(prog, SCALE);
        let priority = AllocatorConfig::priority(PriorityOrdering::Sorting);
        for file in [RegisterFile::new(8, 6, 2, 2), RegisterFile::mips_full()] {
            let imp = bench
                .overhead(FreqMode::Dynamic, file, &AllocatorConfig::improved())
                .total();
            let pri = bench.overhead(FreqMode::Dynamic, file, &priority).total();
            assert!(
                imp <= pri * 1.05,
                "{prog} at {file}: improved {imp} vs priority {pri}"
            );
        }
    }
}

/// Table 4: the enhancements speed up execution (cycle model) on the
/// paper's five programs, by single-digit-ish percentages.
#[test]
fn tab4_speedups_have_the_right_magnitude() {
    for prog in [SpecProgram::Compress, SpecProgram::Eqntott, SpecProgram::Li] {
        let pct = ccra_eval::experiments::tab4::speedup_percent(prog, SCALE);
        assert!(
            (0.0..25.0).contains(&pct),
            "{prog}: speedup {pct:.1}% out of the plausible band"
        );
    }
}
