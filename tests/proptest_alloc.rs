//! Property-based tests: random programs through the whole pipeline.

use call_cost_regalloc::prelude::*;
use ccra_analysis::{run, InterpConfig};
use ccra_regalloc::PriorityOrdering;
use ccra_workloads::{random_program, FuzzConfig};
use proptest::prelude::*;

fn interp() -> InterpConfig {
    InterpConfig {
        step_limit: 5_000_000,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any allocator, any register file: the rewritten program verifies and
    /// computes the same result as the original.
    #[test]
    fn allocation_preserves_semantics(
        seed in 0u64..10_000,
        ri in 6u8..12,
        rf in 4u8..9,
        ei in 0u8..6,
        ef in 0u8..4,
        which in 0usize..6,
    ) {
        let program = random_program(seed, &FuzzConfig::default());
        let expect = run(&program, &interp()).unwrap().result;
        let freq = FrequencyInfo::profile(&program).unwrap();
        let file = RegisterFile::new(ri, rf, ei, ef);
        let config = [
            AllocatorConfig::base(),
            AllocatorConfig::improved(),
            AllocatorConfig::optimistic(),
            AllocatorConfig::improved_optimistic(),
            AllocatorConfig::priority(PriorityOrdering::Sorting),
            AllocatorConfig::cbh(),
        ][which];
        let out = ccra_regalloc::allocate_program(&program, &freq, file, &config)
            .expect("allocation succeeds");
        prop_assert!(out.program.verify().is_ok());
        let got = run(&out.program, &interp()).unwrap().result;
        prop_assert_eq!(got, expect);
    }

    /// Overhead is never negative and decomposes into its components.
    #[test]
    fn overhead_decomposition(seed in 0u64..10_000) {
        let program = random_program(seed, &FuzzConfig { stmts_per_fn: 15, ..Default::default() });
        let freq = FrequencyInfo::profile(&program).unwrap();
        let out = ccra_regalloc::allocate_program(
            &program,
            &freq,
            RegisterFile::new(6, 4, 2, 2),
            &AllocatorConfig::improved(),
        )
        .expect("allocation succeeds");
        let o = out.overhead;
        prop_assert!(o.spill >= 0.0 && o.caller_save >= 0.0);
        prop_assert!(o.callee_save >= 0.0 && o.shuffle >= 0.0);
        let total = o.spill + o.caller_save + o.callee_save + o.shuffle;
        prop_assert!((o.total() - total).abs() < 1e-9);
    }

    /// The measured (interpreter) overhead equals the analytic overhead for
    /// profiles of the same input — on arbitrary programs, not just the
    /// curated workloads.
    #[test]
    fn measured_equals_analytic(seed in 0u64..10_000, which in 0usize..3) {
        let program = random_program(seed, &FuzzConfig::default());
        let freq = FrequencyInfo::profile(&program).unwrap();
        let config = [
            AllocatorConfig::base(),
            AllocatorConfig::improved(),
            AllocatorConfig::cbh(),
        ][which];
        let out = ccra_regalloc::allocate_program(
            &program,
            &freq,
            RegisterFile::new(7, 5, 1, 1),
            &config,
        )
        .expect("allocation succeeds");
        let stats = run(&out.program, &interp()).unwrap();
        let measured = ccra_regalloc::measured_overhead(&stats);
        prop_assert!((measured.total() - out.overhead.total()).abs() < 1e-6,
            "measured {} vs analytic {}", measured.total(), out.overhead.total());
    }

    /// Allocation is deterministic: same inputs, same overhead and program.
    #[test]
    fn allocation_is_deterministic(seed in 0u64..10_000) {
        let program = random_program(seed, &FuzzConfig { stmts_per_fn: 12, ..Default::default() });
        let freq = FrequencyInfo::profile(&program).unwrap();
        let file = RegisterFile::new(8, 6, 2, 2);
        let a = ccra_regalloc::allocate_program(&program, &freq, file, &AllocatorConfig::improved())
            .expect("allocation succeeds");
        let b = ccra_regalloc::allocate_program(&program, &freq, file, &AllocatorConfig::improved())
            .expect("allocation succeeds");
        prop_assert_eq!(a.overhead.total(), b.overhead.total());
        prop_assert_eq!(a.program, b.program);
    }

    /// More registers never increase the *spill* component under the base
    /// allocator (call cost may go up — that is the paper's point — but
    /// spilling itself is monotone).
    #[test]
    fn base_spill_cost_monotone_in_registers(seed in 0u64..5_000) {
        let program = random_program(seed, &FuzzConfig { stmts_per_fn: 20, ..Default::default() });
        let freq = FrequencyInfo::profile(&program).unwrap();
        let small = ccra_regalloc::allocate_program(
            &program, &freq, RegisterFile::new(6, 4, 0, 0), &AllocatorConfig::base())
            .expect("allocation succeeds");
        let large = ccra_regalloc::allocate_program(
            &program, &freq, RegisterFile::mips_full(), &AllocatorConfig::base())
            .expect("allocation succeeds");
        prop_assert!(large.overhead.spill <= small.overhead.spill + 1e-9,
            "spill grew from {} to {}", small.overhead.spill, large.overhead.spill);
    }
}
