//! Textual IR round-trips: display → parse → display is the identity, for
//! every workload function and for random programs.

use ccra_ir::{display_function, parse_function, parse_program};
use ccra_workloads::{random_program, spec_program_scaled, FuzzConfig, Scale, SpecProgram};
use proptest::prelude::*;

#[test]
fn all_workload_functions_roundtrip() {
    for prog in SpecProgram::ALL {
        let p = spec_program_scaled(prog, Scale(0.05));
        for (_, f) in p.functions() {
            let text = display_function(f);
            let parsed = parse_function(&text)
                .unwrap_or_else(|e| panic!("{prog}/{}: {e}\n{text}", f.name()));
            assert_eq!(
                text,
                display_function(&parsed),
                "{prog}/{} did not round-trip",
                f.name()
            );
            ccra_ir::verify_function(&parsed).unwrap();
        }
    }
}

#[test]
fn allocated_functions_roundtrip() {
    // Rewritten functions contain spill slots, temporaries, and overhead
    // markers — the parser must handle all of them.
    use call_cost_regalloc::prelude::*;
    let p = spec_program_scaled(SpecProgram::Li, Scale(0.05));
    let freq = FrequencyInfo::profile(&p).unwrap();
    let out = ccra_regalloc::allocate_program(
        &p,
        &freq,
        RegisterFile::new(6, 4, 1, 1),
        &AllocatorConfig::improved(),
    )
    .expect("allocation succeeds");
    for (_, f) in out.program.functions() {
        let text = display_function(f);
        let parsed = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(text, display_function(&parsed));
    }
}

#[test]
fn whole_programs_roundtrip_and_run_identically() {
    use ccra_analysis::{run, InterpConfig};
    for seed in 0..10u64 {
        let p = random_program(seed, &FuzzConfig::default());
        let mut text = String::new();
        for (_, f) in p.functions() {
            text.push_str(&display_function(f));
        }
        text.push_str("main main\n");
        let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let a = run(&p, &InterpConfig::default()).unwrap();
        let b = run(&reparsed, &InterpConfig::default()).unwrap();
        assert_eq!(a.result, b.result, "seed {seed}");
        assert_eq!(a.steps, b.steps, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn random_functions_roundtrip(seed in 0u64..100_000) {
        let p = random_program(seed, &FuzzConfig { functions: 1, ..Default::default() });
        let f = p.function(p.main().unwrap());
        let text = display_function(f);
        let parsed = parse_function(&text).map_err(|e| {
            TestCaseError::fail(format!("{e}\n{text}"))
        })?;
        prop_assert_eq!(text, display_function(&parsed));
    }
}
