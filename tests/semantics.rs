//! End-to-end semantic preservation: every workload, rewritten by every
//! allocator, must verify and compute exactly the same result.

use call_cost_regalloc::prelude::*;
use ccra_analysis::{run, InterpConfig};
use ccra_regalloc::PriorityOrdering;
use ccra_workloads::{spec_program_scaled, Scale};

const SCALE: Scale = Scale(0.05);

fn all_configs() -> Vec<AllocatorConfig> {
    vec![
        AllocatorConfig::base(),
        AllocatorConfig::improved(),
        AllocatorConfig::optimistic(),
        AllocatorConfig::improved_optimistic(),
        AllocatorConfig::priority(PriorityOrdering::RemovingUnconstrained),
        AllocatorConfig::priority(PriorityOrdering::SortingUnconstrained),
        AllocatorConfig::priority(PriorityOrdering::Sorting),
        AllocatorConfig::cbh(),
        AllocatorConfig::with_improvements(true, false, false),
        AllocatorConfig::with_improvements(false, true, false),
        AllocatorConfig::with_improvements(false, false, true),
    ]
}

#[test]
fn every_workload_survives_every_allocator() {
    let files = [
        ccra_machine::RegisterFile::minimum(),
        ccra_machine::RegisterFile::new(8, 6, 2, 2),
        ccra_machine::RegisterFile::mips_full(),
    ];
    for prog in SpecProgram::ALL {
        let ir = spec_program_scaled(prog, SCALE);
        let expect = run(&ir, &InterpConfig::default())
            .unwrap_or_else(|e| panic!("{prog}: {e}"))
            .result;
        let freq = FrequencyInfo::profile(&ir).unwrap();
        for config in all_configs() {
            for file in files {
                let out = ccra_regalloc::allocate_program(&ir, &freq, file, &config)
                    .unwrap_or_else(|e| panic!("{prog}/{}/{file}: {e}", config.label()));
                out.program
                    .verify()
                    .unwrap_or_else(|e| panic!("{prog}/{}/{file}: {e}", config.label()));
                let got = run(&out.program, &InterpConfig::default())
                    .unwrap_or_else(|e| panic!("{prog}/{}/{file}: {e}", config.label()))
                    .result;
                assert_eq!(
                    got,
                    expect,
                    "{prog} under {} at {file} changed semantics",
                    config.label()
                );
            }
        }
    }
}

#[test]
fn static_frequencies_also_preserve_semantics() {
    // Allocation decisions differ under static estimates; semantics must not.
    for prog in [SpecProgram::Eqntott, SpecProgram::Fpppp, SpecProgram::Gcc] {
        let ir = spec_program_scaled(prog, SCALE);
        let expect = run(&ir, &InterpConfig::default()).unwrap().result;
        let freq = FrequencyInfo::estimate(&ir);
        let out = ccra_regalloc::allocate_program(
            &ir,
            &freq,
            ccra_machine::RegisterFile::new(7, 5, 1, 1),
            &AllocatorConfig::improved(),
        )
        .expect("allocation succeeds");
        let got = run(&out.program, &InterpConfig::default()).unwrap().result;
        assert_eq!(got, expect, "{prog}");
    }
}
