//! The telemetry layer's contract: tracing never changes an allocation,
//! event streams are deterministic, and JSONL round-trips losslessly.

use call_cost_regalloc::prelude::*;
use ccra_regalloc::trace::parse_jsonl;
use ccra_regalloc::PriorityOrdering;
use ccra_regalloc::{
    allocate_program, allocate_program_traced, AllocEvent, JsonlSink, ProgramAllocation,
    RecordingSink,
};
use ccra_workloads::{spec_program_scaled, Scale};

const SCALE: Scale = Scale(0.05);

fn traced_run(prog: SpecProgram, config: &AllocatorConfig) -> (ProgramAllocation, RecordingSink) {
    let ir = spec_program_scaled(prog, SCALE);
    let freq = FrequencyInfo::profile(&ir).unwrap();
    let mut sink = RecordingSink::new();
    let out = allocate_program_traced(&ir, &freq, RegisterFile::mips_full(), config, &mut sink)
        .expect("allocation succeeds");
    (out, sink)
}

/// Everything observable about an allocation result, for equality checks
/// (`Program` and `FuncAllocation` do not implement `PartialEq`).
fn fingerprint(out: &ProgramAllocation) -> Vec<(u32, usize, usize, String, Vec<String>)> {
    out.per_func
        .iter()
        .map(|fa| {
            (
                fa.rounds,
                fa.spilled_ranges,
                fa.callee_regs_used,
                format!("{}", fa.overhead),
                fa.ranges
                    .iter()
                    .map(|r| format!("{:?}@{:?}", r.class, r.loc))
                    .collect(),
            )
        })
        .collect()
}

/// The no-op sink must be invisible: a traced allocation and an untraced
/// one produce identical results, range for range.
#[test]
fn tracing_does_not_change_the_allocation() {
    for config in [
        AllocatorConfig::base(),
        AllocatorConfig::improved(),
        AllocatorConfig::cbh(),
    ] {
        let ir = spec_program_scaled(SpecProgram::Eqntott, SCALE);
        let freq = FrequencyInfo::profile(&ir).unwrap();
        let plain = allocate_program(&ir, &freq, RegisterFile::mips_full(), &config)
            .expect("allocation succeeds");
        let (traced, sink) = traced_run(SpecProgram::Eqntott, &config);
        assert_eq!(fingerprint(&plain), fingerprint(&traced), "{config:?}");
        assert_eq!(
            plain.overhead.total(),
            traced.overhead.total(),
            "{config:?} overhead changed under tracing"
        );
        assert!(!sink.events.is_empty(), "{config:?} emitted nothing");
    }
}

/// Two runs of the same allocation emit identical event streams once
/// wall-clock fields are zeroed.
#[test]
fn event_streams_are_deterministic() {
    for config in [
        AllocatorConfig::improved(),
        AllocatorConfig::priority(PriorityOrdering::Sorting),
    ] {
        let (_, a) = traced_run(SpecProgram::Ear, &config);
        let (_, b) = traced_run(SpecProgram::Ear, &config);
        assert_eq!(a.normalized(), b.normalized(), "{config:?}");
    }
}

/// The stream covers every event family and carries the paper's decision
/// vocabulary: SC benefits, a BS key, PR votes.
#[test]
fn streams_cover_all_event_families() {
    let (out, sink) = traced_run(SpecProgram::Sc, &AllocatorConfig::improved());
    let tag_count = |tag: &str| sink.events.iter().filter(|e| e.tag() == tag).count();
    assert!(tag_count("phase") > 0);
    assert!(tag_count("round") > 0);
    assert!(tag_count("decision") > 0);
    assert_eq!(tag_count("func"), out.per_func.len());
    assert_eq!(tag_count("program"), 1);
    let has_bs_key = sink.events.iter().any(|e| match e {
        AllocEvent::Decision(d) => d.bs_key == "benefit_delta",
        _ => false,
    });
    assert!(
        has_bs_key,
        "improved config must stamp its BS key on decisions"
    );
    match sink.events.last().unwrap() {
        AllocEvent::Program(s) => {
            assert_eq!(s.config, AllocatorConfig::improved().label());
            assert!((s.total() - out.overhead.total()).abs() < 1e-9);
        }
        other => panic!("stream must close with a program summary, got {other:?}"),
    }
}

/// Events survive a serialize → JSONL → parse round trip unchanged.
#[test]
fn events_roundtrip_through_jsonl() {
    let (_, sink) = traced_run(SpecProgram::Compress, &AllocatorConfig::improved());
    let mut jsonl = JsonlSink::new(Vec::new());
    for e in &sink.events {
        use ccra_regalloc::AllocSink;
        jsonl.emit(e.clone());
    }
    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    let parsed = parse_jsonl(&text).unwrap();
    assert_eq!(parsed, sink.events);

    // And a line-by-line check that each event is one self-describing
    // object.
    for (line, event) in text.lines().zip(&sink.events) {
        assert!(line.starts_with(&format!("{{\"event\":\"{}\"", event.tag())));
    }
}
