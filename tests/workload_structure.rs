//! Structural checks tying each synthetic workload to the paper's
//! characterisation of its SPEC92 counterpart.

use call_cost_regalloc::prelude::*;
use ccra_ir::{Inst, RegClass};
use ccra_workloads::{spec_program_scaled, Scale};

const SCALE: Scale = Scale(0.1);

fn count_float_insts(p: &ccra_ir::Program) -> (usize, usize) {
    let (mut float, mut total) = (0usize, 0usize);
    for (_, f) in p.functions() {
        for (_, block) in f.blocks() {
            for inst in &block.insts {
                total += 1;
                if let Inst::Binary { op, .. } = inst {
                    if op.is_float() {
                        float += 1;
                    }
                }
            }
        }
    }
    (float, total)
}

/// tomcatv: "consists of only one big function and no calls".
#[test]
fn tomcatv_structure() {
    let p = spec_program_scaled(SpecProgram::Tomcatv, SCALE);
    assert_eq!(p.num_functions(), 1);
    assert!(p.function(p.main().unwrap()).call_sites().is_empty());
    let (float, total) = count_float_insts(&p);
    assert!(float * 3 > total, "tomcatv is floating-point dominated");
}

/// fpppp: enormous straight-line floating-point code — its biggest block
/// dwarfs every other workload's.
#[test]
fn fpppp_has_huge_basic_blocks() {
    let p = spec_program_scaled(SpecProgram::Fpppp, SCALE);
    let biggest = p
        .functions()
        .flat_map(|(_, f)| f.blocks().map(|(_, b)| b.insts.len()).collect::<Vec<_>>())
        .max()
        .unwrap();
    assert!(
        biggest >= 60,
        "fpppp's biggest block has {biggest} instructions"
    );
    // And its float pressure is high enough to force spilling through the
    // middle of the register sweep.
    let freq = FrequencyInfo::profile(&p).unwrap();
    let out = ccra_regalloc::allocate_program(
        &p,
        &freq,
        RegisterFile::new(9, 7, 3, 3),
        &AllocatorConfig::base(),
    )
    .expect("allocation succeeds");
    assert!(out.overhead.spill > 0.0, "fpppp spills at (9,7,3,3)");
}

/// The interpreters (li, sc) make helper calls on their *common* paths:
/// their hot functions contain call sites executed on most invocations.
#[test]
fn interpreters_call_on_the_common_path() {
    for prog in [SpecProgram::Li, SpecProgram::Sc] {
        let p = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&p).unwrap();
        // The hottest *calling* function (the leaves it calls are entered
        // even more often, but have no call sites themselves).
        let (hot_id, hot_freq) = p
            .func_ids()
            .filter(|&id| !p.function(id).call_sites().is_empty())
            .map(|id| (id, freq.func(id).invocations))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let f = p.function(hot_id);
        let common_calls = f
            .call_sites()
            .iter()
            .filter(|&&(bb, _)| freq.func(hot_id).block(bb) >= hot_freq * 0.9)
            .count();
        assert!(
            common_calls >= 2,
            "{prog}: hot function has {common_calls} hot call sites"
        );
    }
}

/// eqntott/ear/compress: the hot function has a *rare* path containing
/// calls (the cold-calls scenario of the paper's Section 3.2).
#[test]
fn hot_functions_have_rare_call_paths() {
    for prog in [
        SpecProgram::Eqntott,
        SpecProgram::Ear,
        SpecProgram::Compress,
    ] {
        let p = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&p).unwrap();
        let (hot_id, hot_freq) = p
            .func_ids()
            .map(|id| (id, freq.func(id).invocations))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let f = p.function(hot_id);
        let rare_calls = f
            .call_sites()
            .iter()
            .filter(|&&(bb, _)| {
                let w = freq.func(hot_id).block(bb);
                w > 0.0 && w <= hot_freq * 0.2
            })
            .count();
        assert!(
            rare_calls >= 1,
            "{prog}: no rare call path in the hot function"
        );
    }
}

/// Int-dominated vs float-dominated programs match their SPEC subsets
/// (eqntott/li/sc/compress/gcc/espresso are CINT92; ear/fpppp/tomcatv/
/// matrix300/nasa7/alvinn/doduc/spice are CFP92).
#[test]
fn integer_vs_float_suites() {
    let int_suite = [
        SpecProgram::Compress,
        SpecProgram::Eqntott,
        SpecProgram::Espresso,
        SpecProgram::Gcc,
        SpecProgram::Li,
        SpecProgram::Sc,
    ];
    let float_suite = [
        SpecProgram::Alvinn,
        SpecProgram::Ear,
        SpecProgram::Fpppp,
        SpecProgram::Matrix300,
        SpecProgram::Nasa7,
        SpecProgram::Tomcatv,
    ];
    for prog in int_suite {
        let (float, total) = count_float_insts(&spec_program_scaled(prog, SCALE));
        assert!(
            float * 4 < total,
            "{prog} should be integer-dominated ({float}/{total})"
        );
    }
    for prog in float_suite {
        let (float, _) = count_float_insts(&spec_program_scaled(prog, SCALE));
        assert!(
            float >= 5,
            "{prog} should have substantial float work ({float})"
        );
    }
}

/// Every workload exercises both register banks somewhere (the sweeps vary
/// both), and all fourteen differ from each other.
#[test]
fn workloads_are_distinct() {
    use std::collections::HashSet;
    let mut signatures = HashSet::new();
    for prog in SpecProgram::ALL {
        let p = spec_program_scaled(prog, SCALE);
        let sig = (
            p.num_functions(),
            p.num_insts(),
            p.functions().map(|(_, f)| f.num_blocks()).sum::<usize>(),
        );
        assert!(
            signatures.insert(sig),
            "{prog} duplicates another workload: {sig:?}"
        );
    }
}

/// Driver mains exist and are entered exactly once.
#[test]
fn mains_run_once() {
    for prog in SpecProgram::ALL {
        let p = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&p).unwrap();
        assert_eq!(freq.func(p.main().unwrap()).invocations, 1.0, "{prog}");
    }
}

/// The float bank matters: allocating with a starved float bank must cost
/// more than the full machine for the CFP-like programs.
#[test]
fn float_bank_pressure_is_real() {
    for prog in [
        SpecProgram::Ear,
        SpecProgram::Tomcatv,
        SpecProgram::Matrix300,
    ] {
        let p = spec_program_scaled(prog, SCALE);
        let freq = FrequencyInfo::profile(&p).unwrap();
        let starved = ccra_regalloc::allocate_program(
            &p,
            &freq,
            RegisterFile::minimum(),
            &AllocatorConfig::improved(),
        )
        .expect("allocation succeeds");
        let full = ccra_regalloc::allocate_program(
            &p,
            &freq,
            RegisterFile::mips_full(),
            &AllocatorConfig::improved(),
        )
        .expect("allocation succeeds");
        assert!(
            starved.overhead.total() > full.overhead.total(),
            "{prog}: starved {} vs full {}",
            starved.overhead.total(),
            full.overhead.total()
        );
    }
    // Cross-check: float instructions exist in those programs' hot paths.
    let p = spec_program_scaled(SpecProgram::Ear, SCALE);
    let hot = p.find("fil4").expect("ear has its filter kernel");
    let f = p.function(hot);
    let has_float = f.vreg_ids().any(|v| f.class_of(v) == RegClass::Float);
    assert!(has_float);
}
