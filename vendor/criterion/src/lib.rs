//! Offline stand-in for the `criterion` crate.
//!
//! The workspace forbids network access, so the real `criterion` cannot be
//! fetched. This crate mirrors the API shape the `ccra-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — and measures plain wall-clock
//! medians instead of Criterion's statistical analysis. Reports print one
//! line per bench: `name ... median 1.234ms (n=20)`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The bench driver handed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs one stand-alone bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named collection of benches sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one bench in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.samples(), f);
        self
    }

    /// Runs one parameterized bench in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.0, self.samples(), |b| f(b, input));
        self
    }

    /// Closes the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A bench identifier combining a name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifies a bench by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    n: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.n {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let n = sample_size.max(1);
    let mut bencher = Bencher {
        n,
        samples: Vec::with_capacity(n),
    };
    f(&mut bencher);
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "  {name} ... median {median:?} (n={})",
        bencher.samples.len()
    );
}

/// Declares a bench group the way Criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("p", 1), &2, |b, &x| b.iter(|| ran += x));
            g.finish();
        }
        assert!(ran > 0);
    }
}
