//! Offline stand-in for the `proptest` crate.
//!
//! The workspace forbids network access, so the real `proptest` cannot be
//! fetched. This crate vendors the subset its property tests use: the
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//! [`prop_oneof!`] macros, range/tuple/[`strategy::Just`]/map strategies,
//! and [`collection::vec`]/[`collection::hash_set`]. Cases are sampled from
//! a per-test deterministic rng; there is **no shrinking** — a failing case
//! panics with the sampled values still bound, which is enough for CI.

#![forbid(unsafe_code)]

/// Test-case configuration and the deterministic test rng.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases sampled per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; the stand-in never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// The rng driving strategy sampling: deterministic per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Builds the rng for the named test (stable across runs).
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            use rand::SeedableRng;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(seed),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// A failed test case. Bodies may `return`/`?` this; the harness panics
    /// with the carried message (there is no shrinking to drive).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Marks the case as failed with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// Marks the case as rejected (treated as a failure here, since the
        /// stand-in has no resampling budget).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngCore, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.sample(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            SampleRange::sample(self.clone(), rng)
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            SampleRange::sample(self.clone(), rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// One [`crate::prop_oneof!`] arm: a weight and a boxed sampler.
    pub type WeightedArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

    /// A weighted union of strategies (the [`crate::prop_oneof!`] backing).
    pub struct Union<T> {
        arms: Vec<WeightedArm<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; weights must not all be zero.
        pub fn new(arms: Vec<WeightedArm<T>>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Union { arms }
        }
    }

    /// Boxes one [`crate::prop_oneof!`] arm (a macro helper).
    pub fn arm<T, S: Strategy<Value = T> + 'static>(weight: u32, strategy: S) -> WeightedArm<T> {
        (weight, Box::new(move |rng| strategy.sample(rng)))
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.next_u64() % total;
            for (w, f) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return f(rng);
                }
                pick -= w;
            }
            unreachable!("weights covered above")
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{RngCore, SampleRange};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// A strategy producing vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = SampleRange::sample(self.size.clone(), rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing hash sets with target sizes drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Hash sets of `element` values with size *at most* the draw from
    /// `size` (duplicates sampled within the attempt budget are dropped).
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = SampleRange::sample(self.size.clone(), rng);
            let mut out = HashSet::with_capacity(target);
            let mut budget = target.saturating_mul(4).max(8);
            while out.len() < target && budget > 0 {
                out.insert(self.element.sample(rng));
                budget -= 1;
            }
            out
        }
    }

    // Silence an unused warning when no test samples raw words directly.
    const _: fn(&mut TestRng) -> u64 = |rng| rng.next_u64();
}

/// The common imports property tests open with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples its arguments `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // Run the body in a fallible closure so `?` on
                    // `TestCaseError` works as it does in real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case failed: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl (::core::default::Default::default()); $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// A weighted choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::arm(1u32, $strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0usize..4, 1i64..=3)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4);
            prop_assert!((1..=3).contains(&pair.1));
        }
    }

    proptest! {
        #[test]
        fn collections(v in crate::collection::vec(0u32..6, 0..20),
                       s in crate::collection::hash_set(0usize..50, 0..10)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 6));
            prop_assert!(s.len() < 10);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Insert(usize),
        Clear,
    }

    proptest! {
        #[test]
        fn oneof_and_map(op in prop_oneof![3 => (0usize..9).prop_map(Op::Insert),
                                           1 => Just(Op::Clear)]) {
            match op {
                Op::Insert(i) => prop_assert!(i < 9),
                Op::Clear => {}
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
