//! Offline stand-in for the `rand` crate.
//!
//! The workspace forbids network access, so the real `rand` cannot be
//! fetched; this crate vendors the small API surface the workspace uses —
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], [`Rng::gen`], and
//! [`Rng::gen_range`] over integer and float ranges — on top of a
//! SplitMix64 generator. Streams are deterministic for a given seed (which
//! the workloads rely on) but do **not** match upstream `rand`'s streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an rng (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Types with a uniform sampler over a range (mirrors upstream rand's
/// `SampleUniform`; the single blanket [`SampleRange`] impl below is what
/// lets `gen_range(0..2)` infer `usize` from an indexing context).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range samplable for values of type `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the rng from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete rng implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard rng: SplitMix64 (not the upstream StdRng
    /// algorithm, but deterministic and well distributed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&f));
            let i: i64 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn gen_produces_varied_words() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }
}
