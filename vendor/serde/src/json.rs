//! A small JSON document model with a writer and a parser.
//!
//! [`Value`] keeps object keys in insertion order, so serialization is
//! deterministic — a property the trace tests rely on.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Renders the document as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a fraction or exponent so the parser reads a float back.
                    let s = format!("{f:?}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no inf/nan; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or shape error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// An error for a missing object key.
    pub fn missing(key: &str) -> Self {
        Error::new(format!("missing key `{key}`"))
    }

    /// An error for a value of the wrong JSON type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error::new(format!("expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {pos}",
            b as char
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid token at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new("invalid number"))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::new("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("n".into(), Value::Int(-3)),
            ("x".into(), Value::Float(2.5)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("xs".into(), Value::Arr(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_stay_floats() {
        let v = Value::Float(3.0);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
