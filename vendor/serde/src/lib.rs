//! Offline stand-in for the `serde` crate.
//!
//! The workspace forbids network access, so the real `serde` cannot be
//! fetched. This crate keeps the familiar spelling — `use serde::Serialize`
//! plus `#[derive(Serialize, Deserialize)]` via the `derive` feature — but
//! serializes through a built-in JSON [`json::Value`] model instead of
//! serde's visitor machinery. The derive macros (in the sibling
//! `serde_derive` crate) support structs with named fields, which is all
//! the workspace derives on.

#![forbid(unsafe_code)]

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Types renderable as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON document.
    fn to_value(&self) -> Value;

    /// Renders `self` as compact JSON text.
    fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reads `self` back from a JSON document.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Parses JSON text and reads `self` from it.
    fn from_json(text: &str) -> Result<Self, Error> {
        Self::from_value(&json::parse(text)?)
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value.as_i64().ok_or_else(|| Error::type_mismatch("integer", value))?;
                <$t>::try_from(i).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::type_mismatch("number", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::type_mismatch("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::type_mismatch("string", value))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::type_mismatch("array", value)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_json(&7u32.to_json()).unwrap(), 7);
        assert_eq!(f64::from_json(&2.5f64.to_json()).unwrap(), 2.5);
        assert_eq!(
            String::from_json(&"hi\n".to_string().to_json()).unwrap(),
            "hi\n"
        );
        assert_eq!(
            Vec::<i64>::from_json(&vec![1i64, -2].to_json()).unwrap(),
            vec![1, -2]
        );
        assert_eq!(Option::<u32>::from_json("null").unwrap(), None);
        assert_eq!(Option::<u32>::from_json("3").unwrap(), Some(3));
    }

    #[test]
    fn range_errors_surface() {
        assert!(u8::from_json("300").is_err());
        assert!(bool::from_json("1").is_err());
    }
}
