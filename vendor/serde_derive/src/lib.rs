//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` crate by hand-parsing the item's token stream (no
//! `syn`/`quote`, which the offline environment cannot fetch). Supported
//! shape: non-generic `struct`s with named fields — which is every type the
//! workspace derives on. Anything else panics with a clear message at
//! compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored) for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{\n\
                 ::serde::json::Value::Obj(vec![{}])\n\
             }}\n\
         }}",
        entries.join(", ")
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored) for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\")\
                 .ok_or_else(|| ::serde::json::Error::missing(\"{f}\"))?)?"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::json::Value)\n\
                 -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n\
             }}\n\
         }}",
        entries.join(", ")
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Extracts `(struct name, field names)` from a derive input stream.
fn parse_struct(input: TokenStream) -> (String, Vec<String>) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!(
                    "vendored serde derive supports structs only; \
                        implement Serialize/Deserialize for enums by hand"
                )
            }
            Some(other) => panic!("vendored serde derive: unexpected token `{other}`"),
            None => panic!("vendored serde derive: no struct found"),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde derive: expected struct name, got {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("vendored serde derive does not support generic structs")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, field_names(g.stream()))
        }
        _ => panic!("vendored serde derive supports named-field structs only"),
    }
}

/// Collects the field names of a named-field struct body.
fn field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            // Field attribute or doc comment.
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                names.push(id.to_string());
                i += 1; // past the name
                i += 1; // past the `:`
                        // Skip the type up to the next top-level comma. Commas
                        // inside generic arguments hide behind angle brackets.
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("vendored serde derive: unexpected field token `{other}`"),
        }
    }
    names
}
